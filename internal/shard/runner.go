package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"hmc/internal/core"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// LegRequest is one shard leg: resume the shard's checkpoint under its
// ownership spec and run the owned frontier to exhaustion (or until the
// context cancels), returning the leg's final checkpoint — new memo, new
// counters, forwarded graphs and any drained pending.
type LegRequest struct {
	// Program is the in-process program; Source/Test identify it for
	// remote runners (a litmus source, or a built-in corpus test name).
	Program *prog.Program
	Source  string
	Test    string
	// Opts carries the run's semantic options. The per-leg fields —
	// Context, ResumeFrom, Shard, Checkpoint, Progress, Trace, FailAfter
	// — are overridden by the runner.
	Opts       core.Options
	Checkpoint *core.Checkpoint
	Spec       *core.ShardSpec
}

// Runner executes shard legs. Implementations must be safe for
// concurrent use: the coordinator runs several legs at once.
type Runner interface {
	RunLeg(ctx context.Context, req *LegRequest) (*core.Checkpoint, error)
}

// inProcess marks runners whose legs run in this process and therefore
// can invoke the run's callbacks (Options.OnExecution and friends).
type inProcess interface{ InProcess() bool }

// Local runs legs in-process via core.Explore.
type Local struct{}

// InProcess marks Local legs callback-capable.
func (Local) InProcess() bool { return true }

// RunLeg implements Runner.
func (Local) RunLeg(ctx context.Context, req *LegRequest) (*core.Checkpoint, error) {
	opts := req.Opts
	opts.Context = ctx
	opts.ResumeFrom = req.Checkpoint
	opts.Shard = req.Spec
	opts.Checkpoint = nil
	opts.Progress = nil
	opts.Trace = nil
	opts.FailAfter = 0
	res, err := core.Explore(req.Program, opts)
	if err != nil {
		return nil, err
	}
	if res.Checkpoint == nil {
		return nil, errors.New("shard: leg ended without a checkpoint")
	}
	return res.Checkpoint, nil
}

// LegWire is the on-the-wire form of a LegRequest (POST /v1/shards on a
// peer hmcd). Callback options do not travel: a peer leg contributes
// counters, keys and error reports through its checkpoint only.
type LegWire struct {
	Source           string          `json:"source,omitempty"`
	Test             string          `json:"test,omitempty"`
	Model            string          `json:"model"`
	Shard            string          `json:"shard"`
	Checkpoint       json.RawMessage `json:"checkpoint"`
	MaxSteps         int             `json:"max_steps,omitempty"`
	MaxExecutions    int             `json:"max_executions,omitempty"`
	MaxEvents        int             `json:"max_events,omitempty"`
	MemoryBudget     int64           `json:"memory_budget,omitempty"`
	Workers          int             `json:"workers,omitempty"`
	Symmetry         bool            `json:"symmetry,omitempty"`
	StaticAnalysis   bool            `json:"static_analysis,omitempty"`
	CheckDeps        bool            `json:"check_deps,omitempty"`
	PorfOnlyRevisits bool            `json:"porf_only_revisits,omitempty"`
	CollectKeys      bool            `json:"collect_keys,omitempty"`
	DedupSafeguard   bool            `json:"dedup_safeguard,omitempty"`
}

// LegResponse is the peer's reply: the leg's final checkpoint.
type LegResponse struct {
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// ExecuteLeg runs a wire-form leg in this process — the peer side of
// HTTPPeer, shared with the hmcd /v1/shards handler. The caller resolves
// the program (it owns the corpus); everything else is validated here:
// the checkpoint decodes, matches the program, and carries the request's
// shard spec.
func ExecuteLeg(ctx context.Context, w *LegWire, p *prog.Program) (*core.Checkpoint, error) {
	model, err := memmodel.ByName(w.Model)
	if err != nil {
		return nil, err
	}
	cp, err := core.DecodeCheckpoint(w.Checkpoint)
	if err != nil {
		return nil, err
	}
	if cp.Shard != w.Shard {
		return nil, fmt.Errorf("shard: leg checkpoint spec %q, request says %q", cp.Shard, w.Shard)
	}
	spec, err := core.ParseShardSpec(w.Shard)
	if err != nil {
		return nil, err
	}
	req := &LegRequest{
		Program: p,
		Opts: core.Options{
			Model:            model,
			MaxSteps:         w.MaxSteps,
			MaxExecutions:    w.MaxExecutions,
			MaxEvents:        w.MaxEvents,
			MemoryBudget:     w.MemoryBudget,
			Workers:          w.Workers,
			Symmetry:         w.Symmetry,
			StaticAnalysis:   w.StaticAnalysis,
			CheckDeps:        w.CheckDeps,
			PorfOnlyRevisits: w.PorfOnlyRevisits,
			CollectKeys:      w.CollectKeys,
			DedupSafeguard:   w.DedupSafeguard,
		},
		Checkpoint: cp,
		Spec:       spec,
	}
	return Local{}.RunLeg(ctx, req)
}

// transientError marks leg failures caused by the transport or a
// momentarily unhealthy peer — the kind a retry can fix. Failures that
// are deterministic functions of the request (4xx, spec mismatches,
// checkpoint identity mismatches) are returned bare: re-sending the same
// bytes would fail the same way.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transient(err error) error { return &transientError{err: err} }

// IsTransient reports whether a leg error is a transient transport-side
// failure worth retrying on the same peer (connection errors, 5xx,
// truncated or unparseable response bodies, deadline overruns).
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// defaultPeerClient is the fallback client for peers without an explicit
// one: bounded dials and keep-alives suited to long-lived legs. The
// response-header timeout is deliberately generous — the peer computes
// the entire leg before it writes headers, so this is a liveness bound
// on a hung peer, not a latency bound on a busy one. Per-leg deadlines
// ride the request context.
var defaultPeerClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		MaxIdleConns:          32,
		MaxIdleConnsPerHost:   4,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: 15 * time.Minute,
		ExpectContinueTimeout: time.Second,
	},
}

// HTTPPeer farms legs to a peer hmcd over its /v1/shards endpoint. Any
// transport or peer failure is returned as an error with the input
// checkpoint untouched, so the coordinator can re-run the leg elsewhere
// exactly-once — a dead peer costs the leg's partial work, never
// correctness. Retryable failures satisfy IsTransient.
type HTTPPeer struct {
	// BaseURL is the peer's base URL, e.g. "http://host:4780".
	BaseURL string
	// Client, when nil, falls back to a shared default with sane dial
	// and response-header timeouts (never http.DefaultClient, which has
	// none). Cancellation and deadlines ride the leg context either way.
	Client *http.Client
}

// RunLeg implements Runner.
func (h *HTTPPeer) RunLeg(ctx context.Context, req *LegRequest) (*core.Checkpoint, error) {
	if req.Source == "" && req.Test == "" {
		return nil, errors.New("shard: peer legs need the program's source or test name")
	}
	o := req.Opts
	w := &LegWire{
		Source:           req.Source,
		Test:             req.Test,
		Model:            o.Model.Name(),
		Shard:            req.Spec.String(),
		MaxSteps:         o.MaxSteps,
		MaxExecutions:    o.MaxExecutions,
		MaxEvents:        o.MaxEvents,
		MemoryBudget:     o.MemoryBudget,
		Workers:          o.Workers,
		Symmetry:         o.Symmetry,
		StaticAnalysis:   o.StaticAnalysis,
		CheckDeps:        o.CheckDeps,
		PorfOnlyRevisits: o.PorfOnlyRevisits,
		CollectKeys:      o.CollectKeys,
		DedupSafeguard:   o.DedupSafeguard,
	}
	var err error
	if w.Checkpoint, err = req.Checkpoint.Encode(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(w)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, h.BaseURL+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	client := h.Client
	if client == nil {
		client = defaultPeerClient
	}
	resp, err := client.Do(hr)
	if err != nil {
		return nil, transient(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		// A body that dies mid-read is the transport's fault (truncation,
		// reset), not the request's.
		return nil, transient(fmt.Errorf("shard: peer %s: reading response: %w", h.BaseURL, err))
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("shard: peer %s: status %d: %.200s", h.BaseURL, resp.StatusCode, data)
		if resp.StatusCode >= 500 {
			return nil, transient(err) // peer-side trouble; the request may be fine
		}
		return nil, err // 4xx: the peer understood and refused — deterministic
	}
	var lr LegResponse
	if err := json.Unmarshal(data, &lr); err != nil {
		// The peer only sends well-formed LegResponses; garbage here means
		// the bytes were damaged in flight.
		return nil, transient(fmt.Errorf("shard: peer %s: bad response: %w", h.BaseURL, err))
	}
	cp, err := core.DecodeCheckpoint(lr.Checkpoint)
	if err != nil {
		return nil, transient(fmt.Errorf("shard: peer %s: bad checkpoint: %w", h.BaseURL, err))
	}
	// The peer speaks for one leg of our run and nothing else: a spec or
	// identity mismatch would corrupt the exactly-once accounting, so it
	// is rejected here rather than trusted.
	if cp.Shard != req.Spec.String() {
		return nil, fmt.Errorf("shard: peer %s returned spec %q, leg is %q", h.BaseURL, cp.Shard, req.Spec)
	}
	if cp.Fingerprint != req.Checkpoint.Fingerprint || cp.Model != req.Checkpoint.Model || cp.Opts != req.Checkpoint.Opts {
		return nil, fmt.Errorf("shard: peer %s returned a checkpoint for a different run", h.BaseURL)
	}
	return cp, nil
}
