package shard

import (
	"bytes"
	"testing"

	"hmc/internal/core"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
)

// FuzzShardSplit asserts the split/merge contract on untrusted
// checkpoints: any bytes DecodeCheckpoint accepts either refuse to Split
// with an error (never a panic), or survive the full distribution round
// trip — Split, each leg re-encoded and re-decoded through the wire
// codec, Merge — landing back on the original checkpoint modulo the
// canonical ordering Merge applies.
func FuzzShardSplit(f *testing.F) {
	imm, _ := memmodel.ByName("imm")
	for _, name := range []string{"SB", "LB", "MP"} {
		tc, ok := litmus.ByName(name)
		if !ok {
			continue
		}
		for _, k := range []int{2, 6} {
			res, err := core.Explore(tc.P, core.Options{Model: imm, DedupSafeguard: true, CollectKeys: true, FailAfter: k})
			if err != nil || res.Checkpoint == nil {
				continue
			}
			if data, err := res.Checkpoint.Encode(); err == nil {
				f.Add(data, 3)
				f.Add(data, 8)
			}
		}
	}
	f.Add([]byte(`{"version":1,"schema":1}`), 2)
	f.Add([]byte(`not json`), 2)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		cp, err := core.DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if n < 1 || n > 64 {
			n = 1 + (n&0x7fffffff)%8
		}
		parts, err := Split(cp, n, 0)
		if err != nil {
			return // already-sharded or otherwise unsplittable: refusal is fine
		}
		if len(parts) != n {
			t.Fatalf("Split(%d) returned %d parts", n, len(parts))
		}
		wired := make([]*core.Checkpoint, n)
		for i, part := range parts {
			enc, err := part.Encode()
			if err != nil {
				t.Fatalf("shard %d failed to encode: %v", i, err)
			}
			if wired[i], err = core.DecodeCheckpoint(enc); err != nil {
				t.Fatalf("shard %d failed to re-decode: %v", i, err)
			}
		}
		merged, err := Merge(wired)
		if err != nil {
			t.Fatalf("Merge after Split(%d): %v", n, err)
		}
		if !bytes.Equal(normalized(t, cp), normalized(t, merged)) {
			t.Fatalf("Merge(Split(cp, %d)) != cp", n)
		}
	})
}
