// Package shard partitions one exploration across N explorers. It builds
// on two primitives from internal/core: checkpoints (a self-contained,
// versioned serialization of exploration state with exactly-once resume
// semantics) and state ownership (core.ShardSpec — canonical state keys
// hash into buckets, each bucket owned by exactly one shard, and an
// explorer running under Options.Shard forwards graphs it does not own
// instead of exploring them).
//
// Split turns a whole-run checkpoint into N disjoint shard checkpoints;
// the coordinator (coordinator.go) drives one explorer leg per shard —
// in-process or on hmcd peers — routing forwarded graphs between them,
// re-balancing buckets when a shard drains (work-stealing) and re-running
// failed legs from their input checkpoint; Merge recombines the shard
// checkpoints into a whole-run checkpoint whose counters are identical to
// the single-process run's. That identity is not approximate: each state
// is expanded by exactly one owner and each constructed graph is
// memo-checked exactly once (at its owner), so every Stats counter is
// invariant under the partition, the leg schedule, steals and retries —
// the property the equivalence tests in this package assert byte-for-byte.
package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"hmc/internal/core"
)

// DefaultBuckets is the default ownership-bucket count: coarse enough
// that the spec strings stay small, fine enough that work-stealing can
// move meaningful fractions of a shard's state space.
const DefaultBuckets = 64

// Split partitions a whole-run checkpoint into n self-contained shard
// checkpoints over the given number of ownership buckets (0 = a default):
// shard i owns buckets {b : b mod n == i}, the memo and seen sets are
// partitioned by bucket, and the pending frontier is dealt round-robin in
// canonical order (a misplaced pending graph is harmless: its first visit
// forwards it to the owner, exploring nothing). Shard 0 carries the base
// counters, verdict material and error reports; the other shards start
// from zero, so the shards' stats always sum to the whole run's.
func Split(cp *core.Checkpoint, n, buckets int) ([]*core.Checkpoint, error) {
	if cp == nil {
		return nil, errors.New("shard: Split of a nil checkpoint")
	}
	if cp.Shard != "" {
		return nil, fmt.Errorf("shard: Split input is already a shard checkpoint (%q)", cp.Shard)
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: cannot split into %d shards", n)
	}
	if buckets == 0 {
		buckets = DefaultBuckets
		if buckets < n {
			buckets = n
		}
	}
	if buckets < n {
		return nil, fmt.Errorf("shard: %d buckets cannot cover %d shards", buckets, n)
	}
	specs := make([]*core.ShardSpec, n)
	for i := 0; i < n; i++ {
		var own []int
		for b := i; b < buckets; b += n {
			own = append(own, b)
		}
		spec, err := core.NewShardSpec(buckets, own)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	out := make([]*core.Checkpoint, n)
	for i, spec := range specs {
		out[i] = &core.Checkpoint{
			Version:     cp.Version,
			Schema:      cp.Schema,
			Fingerprint: cp.Fingerprint,
			Model:       cp.Model,
			Opts:        cp.Opts,
			Shard:       spec.String(),
		}
	}
	// Base counters, keys and error reports ride shard 0; Stats sums (and
	// MaxGraphEvents maxes) recover them on Merge.
	out[0].Stats = cp.Stats
	out[0].Stats.Errors = nil
	out[0].Keys = append([]string(nil), cp.Keys...)
	out[0].DepViolationDetails = append([]string(nil), cp.DepViolationDetails...)
	out[0].Truncated = cp.Truncated
	out[0].TruncatedReason = cp.TruncatedReason
	out[0].Errors = append([]core.WireError(nil), cp.Errors...)
	for _, k := range cp.Memo {
		i := core.BucketOf(k, buckets) % n
		out[i].Memo = append(out[i].Memo, k)
	}
	for _, k := range cp.Seen {
		i := core.BucketOf(k, buckets) % n
		out[i].Seen = append(out[i].Seen, k)
	}
	pending := append(append([]json.RawMessage(nil), cp.Pending...), forwardedRaw(cp)...)
	sort.Slice(pending, func(i, j int) bool { return bytes.Compare(pending[i], pending[j]) < 0 })
	for i, raw := range pending {
		out[i%n].Pending = append(out[i%n].Pending, raw)
	}
	return out, nil
}

// forwardedRaw returns the raw graphs of a checkpoint's Forwarded list
// (pending-equivalent arrivals that have not been memo-checked yet).
func forwardedRaw(cp *core.Checkpoint) []json.RawMessage {
	if len(cp.Forwarded) == 0 {
		return nil
	}
	out := make([]json.RawMessage, 0, len(cp.Forwarded))
	for _, fw := range cp.Forwarded {
		out = append(out, fw.Graph)
	}
	return out
}

// Merge recombines shard checkpoints into one whole-run checkpoint. The
// inputs must agree on program, model, options, wire version and bucket
// count, and their ownership specs must partition the buckets exactly —
// disjoint and covering — the invariant the coordinator maintains across
// steals. Counters are summed (MaxGraphEvents maxed, Truncated ORed),
// sets are unioned, and pending plus forwarded graphs become the merged
// pending frontier, all in canonical sorted order: merging the same
// shards always yields the same bytes, and Merge(Split(cp)) is equivalent
// to cp (same counters, sets and frontier, canonically ordered). The
// result carries no shard spec, so any single explorer — or a fresh Split
// — can resume it.
func Merge(cps []*core.Checkpoint) (*core.Checkpoint, error) {
	if len(cps) == 0 {
		return nil, errors.New("shard: Merge of no checkpoints")
	}
	base := cps[0]
	if base == nil {
		return nil, errors.New("shard: Merge of a nil checkpoint")
	}
	merged := &core.Checkpoint{
		Version:     base.Version,
		Schema:      base.Schema,
		Fingerprint: base.Fingerprint,
		Model:       base.Model,
		Opts:        base.Opts,
	}
	owners := map[int]bool{}
	mod := 0
	for i, cp := range cps {
		if cp == nil {
			return nil, fmt.Errorf("shard: Merge input %d is nil", i)
		}
		if cp.Version != base.Version || cp.Schema != base.Schema {
			return nil, fmt.Errorf("shard: Merge input %d version %d/%d, input 0 is %d/%d", i, cp.Version, cp.Schema, base.Version, base.Schema)
		}
		if cp.Fingerprint != base.Fingerprint || cp.Model != base.Model || cp.Opts != base.Opts {
			return nil, fmt.Errorf("shard: Merge input %d describes a different run (fingerprint/model/options)", i)
		}
		spec, err := core.ParseShardSpec(cp.Shard)
		if err != nil {
			return nil, fmt.Errorf("shard: Merge input %d: %w", i, err)
		}
		if mod == 0 {
			mod = spec.Mod()
		} else if spec.Mod() != mod {
			return nil, fmt.Errorf("shard: Merge input %d has %d buckets, input 0 has %d", i, spec.Mod(), mod)
		}
		for _, b := range spec.Buckets() {
			if owners[b] {
				return nil, fmt.Errorf("shard: Merge inputs both own bucket %d", b)
			}
			owners[b] = true
		}
		mergeStats(&merged.Stats, cp.Stats)
		merged.Keys = append(merged.Keys, cp.Keys...)
		merged.DepViolationDetails = append(merged.DepViolationDetails, cp.DepViolationDetails...)
		if cp.Truncated {
			merged.Truncated = true
			if merged.TruncatedReason == "" {
				merged.TruncatedReason = cp.TruncatedReason
			}
		}
		merged.Errors = append(merged.Errors, cp.Errors...)
		merged.Memo = append(merged.Memo, cp.Memo...)
		merged.Seen = append(merged.Seen, cp.Seen...)
		merged.Pending = append(merged.Pending, cp.Pending...)
		merged.Pending = append(merged.Pending, forwardedRaw(cp)...)
	}
	for b := 0; b < mod; b++ {
		if !owners[b] {
			return nil, fmt.Errorf("shard: Merge inputs leave bucket %d unowned", b)
		}
	}
	sort.Strings(merged.Keys)
	sort.Strings(merged.DepViolationDetails)
	sort.Strings(merged.Memo)
	sort.Strings(merged.Seen)
	sort.Slice(merged.Pending, func(i, j int) bool { return bytes.Compare(merged.Pending[i], merged.Pending[j]) < 0 })
	sort.Slice(merged.Errors, func(i, j int) bool {
		a, b := merged.Errors[i], merged.Errors[j]
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		return bytes.Compare(a.Graph, b.Graph) < 0
	})
	if len(merged.Keys) == 0 {
		merged.Keys = nil
	}
	if len(merged.Errors) == 0 {
		merged.Errors = nil
	}
	return merged, nil
}

// mergeStats accumulates s into dst: every counter sums, except
// MaxGraphEvents (a maximum). TestMergeStatsCoversAllFields keeps this
// list in sync with core.Stats by reflection.
func mergeStats(dst *core.Stats, s core.Stats) {
	dst.Executions += s.Executions
	dst.ExistsCount += s.ExistsCount
	dst.Blocked += s.Blocked
	dst.Duplicates += s.Duplicates
	dst.RevisitsTried += s.RevisitsTried
	dst.RevisitsTaken += s.RevisitsTaken
	dst.States += s.States
	dst.MemoHits += s.MemoHits
	dst.RevisitsRepairFail += s.RevisitsRepairFail
	dst.RevisitsPorfSkip += s.RevisitsPorfSkip
	dst.ConsistencyChecks += s.ConsistencyChecks
	dst.StuckReads += s.StuckReads
	if s.MaxGraphEvents > dst.MaxGraphEvents {
		dst.MaxGraphEvents = s.MaxGraphEvents
	}
	dst.StaticPrunedRf += s.StaticPrunedRf
	dst.StaticPrunedCo += s.StaticPrunedCo
	dst.StaticPrunedScans += s.StaticPrunedScans
	dst.DepViolations += s.DepViolations
}
