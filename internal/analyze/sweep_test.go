package analyze_test

import (
	"testing"

	"hmc/internal/analyze"
	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/prog"
)

// TestCorpusVetSweep pins the clean sweep: `hmc vet` over the whole litmus
// corpus (under the most fence-discriminating model, imm) reports no Warn
// or Error findings. Info findings — missed-symmetry observations,
// Exists-observed final stores — are expected and allowed; anything
// stronger in a corpus program is either a corpus bug or a lint
// false positive, and both must be fixed rather than waved through.
func TestCorpusVetSweep(t *testing.T) {
	for _, tc := range litmus.Corpus() {
		for _, f := range analyze.Analyze(tc.P).Lint("imm") {
			if f.Sev >= analyze.Warn {
				t.Errorf("%s: %s", tc.Name, f)
			}
		}
	}
}

// TestFamiliesVetSweep extends the sweep to the parametric generator
// families. Exceptions are explicit, not silent: gen.IndexerN reads a
// register that is unassigned when the first CAS probe wins (the
// interpreter zero-fills it — intentional, and exactly what the
// unwritten-register lint exists to flag), and gen.Random programs have
// no Exists clause, so their trailing stores are legitimately dead.
func TestFamiliesVetSweep(t *testing.T) {
	progs := []*prog.Program{
		gen.SBN(3), gen.LBN(3), gen.MPN(2), gen.IRIWN(1), gen.CoRRN(2),
		gen.TwoPlusTwoWN(1), gen.IncN(2, 2), gen.CASContendN(2),
		gen.LocalRW(2, 2), gen.SpinlockN(2, eg.FenceFull), gen.Peterson(eg.FenceFull),
		gen.TreiberPushPop(eg.FenceFull), gen.ABBADeadlock(),
	}
	for _, p := range progs {
		for _, f := range analyze.Analyze(p).Lint("imm") {
			if f.Sev >= analyze.Warn {
				t.Errorf("%s: %s", p.Name, f)
			}
		}
	}

	// The sanctioned exception, pinned so it stays intentional.
	got := analyze.Analyze(gen.IndexerN(2)).Findings
	warned := false
	for _, f := range got {
		if f.Code == "unwritten-register" {
			warned = true
		}
	}
	if !warned {
		t.Error("indexer: expected the documented unwritten-register finding")
	}
}

// TestCorpusRacyPairSweep pins the racy-pair lint across the corpus: it
// must stay Info (litmus tests race on purpose; the sweep above would
// explode otherwise) and it must not be inert — the classic plain-access
// shapes (SB, MP, ...) have to surface it.
func TestCorpusRacyPairSweep(t *testing.T) {
	racy := 0
	for _, tc := range litmus.Corpus() {
		for _, f := range analyze.Analyze(tc.P).Findings {
			if f.Code != "racy-pair" {
				continue
			}
			racy++
			if f.Sev != analyze.Info {
				t.Errorf("%s: racy-pair finding is %v, want info: %s", tc.Name, f.Sev, f)
			}
		}
	}
	if racy == 0 {
		t.Error("no racy-pair finding across the whole corpus: the lint is inert")
	}
}

// TestRacyPairsCoverDynamicRaces cross-validates the static
// over-approximation against the dynamic oracle: every race
// core.CheckRaces reports must be covered by a static RacyPair on the
// same location and thread pair. (The converse is not required — the
// lint has no happens-before, so it over-reports by design.)
func TestRacyPairsCoverDynamicRaces(t *testing.T) {
	for _, tc := range litmus.Corpus() {
		rep, err := core.CheckRaces(tc.P, core.Options{MaxExecutions: 200})
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if len(rep.Races) == 0 {
			continue
		}
		foot := analyze.Analyze(tc.P).Foot
		static := map[[3]int]bool{} // (loc, a, b) with a < b
		for l := 0; l < foot.NumLocs; l++ {
			for _, pr := range foot.RacyPairs(eg.Loc(l)) {
				static[[3]int{l, pr.A, pr.B}] = true
			}
		}
		for _, race := range rep.Races {
			a, b := race.A.T, race.B.T
			if a > b {
				a, b = b, a
			}
			if !static[[3]int{int(race.Loc), a, b}] {
				t.Errorf("%s: dynamic race %v not covered by any static racy-pair", tc.Name, race)
			}
		}
	}
}
