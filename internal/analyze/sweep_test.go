package analyze_test

import (
	"testing"

	"hmc/internal/analyze"
	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/prog"
)

// TestCorpusVetSweep pins the clean sweep: `hmc vet` over the whole litmus
// corpus (under the most fence-discriminating model, imm) reports no Warn
// or Error findings. Info findings — missed-symmetry observations,
// Exists-observed final stores — are expected and allowed; anything
// stronger in a corpus program is either a corpus bug or a lint
// false positive, and both must be fixed rather than waved through.
func TestCorpusVetSweep(t *testing.T) {
	for _, tc := range litmus.Corpus() {
		for _, f := range analyze.Analyze(tc.P).Lint("imm") {
			if f.Sev >= analyze.Warn {
				t.Errorf("%s: %s", tc.Name, f)
			}
		}
	}
}

// TestFamiliesVetSweep extends the sweep to the parametric generator
// families. Exceptions are explicit, not silent: gen.IndexerN reads a
// register that is unassigned when the first CAS probe wins (the
// interpreter zero-fills it — intentional, and exactly what the
// unwritten-register lint exists to flag), and gen.Random programs have
// no Exists clause, so their trailing stores are legitimately dead.
func TestFamiliesVetSweep(t *testing.T) {
	progs := []*prog.Program{
		gen.SBN(3), gen.LBN(3), gen.MPN(2), gen.IRIWN(1), gen.CoRRN(2),
		gen.TwoPlusTwoWN(1), gen.IncN(2, 2), gen.CASContendN(2),
		gen.LocalRW(2, 2), gen.SpinlockN(2, eg.FenceFull), gen.Peterson(eg.FenceFull),
		gen.TreiberPushPop(eg.FenceFull), gen.ABBADeadlock(),
	}
	for _, p := range progs {
		for _, f := range analyze.Analyze(p).Lint("imm") {
			if f.Sev >= analyze.Warn {
				t.Errorf("%s: %s", p.Name, f)
			}
		}
	}

	// The sanctioned exception, pinned so it stays intentional.
	got := analyze.Analyze(gen.IndexerN(2)).Findings
	warned := false
	for _, f := range got {
		if f.Code == "unwritten-register" {
			warned = true
		}
	}
	if !warned {
		t.Error("indexer: expected the documented unwritten-register finding")
	}
}
