package analyze

import (
	"strings"
	"testing"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// containsPC is a test-side alias of the production helper.
func containsPC(xs []int, x int) bool { return containsInt(xs, x) }

// findings filters a finding list by code.
func findings(fs []Finding, code string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Code == code {
			out = append(out, f)
		}
	}
	return out
}

func TestDataAndAddrDeps(t *testing.T) {
	// t0: r0 = load x      (pc 0)
	//     store y, r0+1    (pc 1)  — data dep on pc 0
	//     r1 = load [r0]   (pc 2)  — addr dep on pc 0
	b := prog.NewBuilder("deps")
	x, y := b.Loc("x"), b.Loc("y")
	_ = y
	th := b.Thread()
	r0 := th.Load(x)
	th.Store(y, prog.Add(prog.R(r0), prog.Const(1)))
	th.LoadAt(prog.R(r0))
	r := Analyze(b.MustBuild())

	d := r.Threads[0].Deps
	if !containsPC(d[1].Data, 0) {
		t.Errorf("store data deps = %v, want to contain 0", d[1].Data)
	}
	if len(d[1].Addr) != 0 {
		t.Errorf("store with constant address has addr deps %v", d[1].Addr)
	}
	if !containsPC(d[2].Addr, 0) {
		t.Errorf("load addr deps = %v, want to contain 0", d[2].Addr)
	}
}

func TestCtrlDeps(t *testing.T) {
	// t0: r0 = load x          (pc 0)
	//     branch r0==0 → end   (pc 1)
	//     store y, 1           (pc 2)  — ctrl dep on pc 0
	b := prog.NewBuilder("ctrl")
	x, y := b.Loc("x"), b.Loc("y")
	th := b.Thread()
	r0 := th.Load(x)
	j := th.BranchFwd(prog.Eq(prog.R(r0), prog.Const(0)))
	th.Store(y, prog.Const(1))
	th.Patch(j)
	th.Load(y)
	r := Analyze(b.MustBuild())

	d := r.Threads[0].Deps
	if !containsPC(d[2].Ctrl, 0) {
		t.Errorf("store ctrl deps = %v, want to contain 0", d[2].Ctrl)
	}
	// Control taint never shrinks: the post-join load carries it too.
	if !containsPC(d[3].Ctrl, 0) {
		t.Errorf("post-merge load ctrl deps = %v, want to contain 0 (ctrl never shrinks)", d[3].Ctrl)
	}
	if len(d[0].Ctrl) != 0 {
		t.Errorf("first load has ctrl deps %v before any branch", d[0].Ctrl)
	}
}

func TestLoadResetsTaint(t *testing.T) {
	// A second load into a register replaces its taint; but a Mov mixing
	// old and new keeps both (path-insensitive union on reconvergence is
	// separate — this is straight-line).
	b := prog.NewBuilder("reset")
	x, y, z := b.Loc("x"), b.Loc("y"), b.Loc("z")
	th := b.Thread()
	r0 := th.Load(x)                              // pc 0
	r1 := th.Mov(prog.R(r0))                      // pc 1: r1 tainted by {0}
	r2 := th.Load(y)                              // pc 2
	th.Store(z, prog.Add(prog.R(r1), prog.R(r2))) // pc 3
	r := Analyze(b.MustBuild())

	d := r.Threads[0].Deps[3].Data
	if !containsPC(d, 0) || !containsPC(d, 2) {
		t.Errorf("store data deps = %v, want {0, 2}", d)
	}
	if containsPC(d, 1) {
		t.Errorf("store data deps %v contain the Mov pc — only loads generate taint", d)
	}
}

func TestJoinAtMerge(t *testing.T) {
	// Two paths move different load results into the same register; after
	// the merge the abstract taint is the union.
	b := prog.NewBuilder("join")
	x, y, z := b.Loc("x"), b.Loc("y"), b.Loc("z")
	th := b.Thread()
	ra := th.Load(x)                                      // pc 0
	rb := th.Load(y)                                      // pc 1
	dst := th.Mov(prog.Const(0))                          // pc 2
	j := th.BranchFwd(prog.Eq(prog.R(ra), prog.Const(0))) // pc 3
	th.Store(z, prog.R(rb))                               // pc 4 (skipped branch arm)
	th.Patch(j)
	th.Store(z, prog.Add(prog.R(ra), prog.R(rb))) // pc 5 (merge point)
	_ = dst
	r := Analyze(b.MustBuild())

	d := r.Threads[0].Deps[5].Data
	if !containsPC(d, 0) || !containsPC(d, 1) {
		t.Errorf("merge store data deps = %v, want union {0, 1}", d)
	}
}

func TestLoopFixpoint(t *testing.T) {
	// A backward branch: the loop-carried register accumulates taint from
	// the load inside the body without divergence.
	b := prog.NewBuilder("loop")
	x := b.Loc("x")
	th := b.Thread()
	top := th.Here()
	r0 := th.Load(x)                                   // pc 0
	th.Store(x, prog.Add(prog.R(r0), prog.Const(1)))   // pc 1
	th.Branch(prog.Eq(prog.R(r0), prog.Const(0)), top) // pc 2
	r := Analyze(b.MustBuild())

	d := r.Threads[0].Deps
	if !containsPC(d[1].Data, 0) {
		t.Errorf("loop store data deps = %v", d[1].Data)
	}
	// Second iteration's events carry the branch's control dependency.
	if !containsPC(d[0].Ctrl, 0) {
		t.Errorf("loop-top load ctrl deps after fixpoint = %v, want {0}", d[0].Ctrl)
	}
}

func TestFootprintClassification(t *testing.T) {
	// x: written by t0, read by t1 (shared, single-writer)
	// s: read+written only by t0 (thread-local)
	// ro: read by both, never written (read-only)
	// sink: written by t0, never read (never-read, single-writer)
	b := prog.NewBuilder("foot")
	x, s, ro, sink := b.Loc("x"), b.Loc("s"), b.Loc("ro"), b.Loc("sink")
	t0 := b.Thread()
	t0.Store(s, prog.Const(1))
	r := t0.Load(s)
	t0.Store(x, prog.R(r))
	t0.Load(ro)
	t0.Store(sink, prog.Const(7))
	t1 := b.Thread()
	t1.Load(x)
	t1.Load(ro)
	res := Analyze(b.MustBuild())
	f := res.Foot

	if !f.ThreadLocal(s) || f.ThreadLocal(x) || f.ThreadLocal(ro) {
		t.Errorf("thread-local: s=%v x=%v ro=%v", f.ThreadLocal(s), f.ThreadLocal(x), f.ThreadLocal(ro))
	}
	if !f.ReadOnly(ro) || f.ReadOnly(x) {
		t.Errorf("read-only: ro=%v x=%v", f.ReadOnly(ro), f.ReadOnly(x))
	}
	if !f.NeverRead(sink) || f.NeverRead(x) {
		t.Errorf("never-read: sink=%v x=%v", f.NeverRead(sink), f.NeverRead(x))
	}
	if w, ok := f.SingleWriter(x); !ok || w != 0 {
		t.Errorf("single-writer(x) = %d,%v want 0,true", w, ok)
	}
	if _, ok := f.SingleWriter(ro); !ok {
		t.Error("read-only location must be single-writer (zero writers)")
	}
	sum := f.Summary(res.P)
	for _, want := range []string{"thread-local", "read-only", "never-read"} {
		if !strings.Contains(sum, want) {
			t.Errorf("footprint summary lacks %q:\n%s", want, sum)
		}
	}
}

func TestFootprintUnknownAddress(t *testing.T) {
	// A register-dependent address makes the accessing thread count as a
	// reader and writer of every location: nothing may be classified.
	b := prog.NewBuilder("unknown")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	r := t0.Load(x)
	t0.LoadAt(prog.R(r))
	t0.StoreAt(prog.R(r), prog.Const(1))
	t1 := b.Thread()
	t1.Store(y, prog.Const(1))
	res := Analyze(b.MustBuild())
	f := res.Foot

	if f.ThreadLocal(y) {
		t.Error("y misclassified thread-local despite t0's unknown store address")
	}
	if _, ok := f.SingleWriter(y); ok {
		t.Error("y misclassified single-writer despite t0's unknown store address")
	}
	if f.NeverRead(y) {
		t.Error("y misclassified never-read despite t0's unknown load address")
	}
}

func TestDiagnosticsCatalogue(t *testing.T) {
	// One program per diagnostic code, asserted by code + position.
	type tc struct {
		name  string
		build func() *prog.Program
		code  string
		sev   Severity
	}
	cases := []tc{
		{"unreachable", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			j := th.JmpFwd()
			th.Store(x, prog.Const(1))
			th.Patch(j)
			th.Load(x)
			return b.MustBuild()
		}, "unreachable", Info},
		{"const-branch", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			j := th.BranchFwd(prog.Const(1))
			th.Store(x, prog.Const(1))
			th.Patch(j)
			th.Load(x)
			return b.MustBuild()
		}, "const-branch", Info},
		{"blocked-assume", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			th.Load(x)
			th.Assume(prog.Const(0))
			return b.MustBuild()
		}, "blocked-assume", Warn},
		{"vacuous-assume", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			th.Load(x)
			th.Assume(prog.Const(1))
			return b.MustBuild()
		}, "vacuous-assume", Info},
		{"failing-assert", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			th.Load(x)
			th.Assert(prog.Const(0), "boom")
			return b.MustBuild()
		}, "failing-assert", Error},
		{"vacuous-assert", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			th.Load(x)
			th.Assert(prog.Const(1), "fine")
			return b.MustBuild()
		}, "vacuous-assert", Warn},
		{"addr-range", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			th.Load(x)
			th.StoreAt(prog.Const(99), prog.Const(1))
			return b.MustBuild()
		}, "addr-range", Warn},
		{"dead-store", func() *prog.Program {
			b := prog.NewBuilder("p")
			x, sink := b.Loc("x"), b.Loc("sink")
			th := b.Thread()
			th.Load(x)
			th.Store(sink, prog.Const(1))
			return b.MustBuild()
		}, "dead-store", Warn},
		{"unwritten-register", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			r := th.NewReg()
			th.Store(x, prog.R(r))
			return b.MustBuild()
		}, "unwritten-register", Warn},
		{"useless-fence-position", func() *prog.Program {
			b := prog.NewBuilder("p")
			x := b.Loc("x")
			th := b.Thread()
			th.Fence(eg.FenceFull) // nothing before it
			th.Load(x)
			return b.MustBuild()
		}, "useless-fence", Warn},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := Analyze(c.build())
			got := findings(res.Findings, c.code)
			if len(got) == 0 {
				t.Fatalf("no %s finding; all findings: %v", c.code, res.Findings)
			}
			if got[0].Sev != c.sev {
				t.Errorf("%s severity = %v, want %v", c.code, got[0].Sev, c.sev)
			}
		})
	}
}

func TestDeadStoreWithExistsIsInfo(t *testing.T) {
	b := prog.NewBuilder("p")
	x, sink := b.Loc("x"), b.Loc("sink")
	th := b.Thread()
	r := th.Load(x)
	th.Store(sink, prog.Const(1))
	b.Exists("r==0", func(fs prog.FinalState) bool { return fs.Reg(0, r) == 0 })
	res := Analyze(b.MustBuild())
	got := findings(res.Findings, "dead-store")
	if len(got) != 1 || got[0].Sev != Info {
		t.Fatalf("dead-store with Exists = %v, want one Info finding", got)
	}
}

func TestModelAwareFenceLint(t *testing.T) {
	// An LW fence between a store and a load: positionally fine, but a
	// no-op under tso (which only consults full fences) and meaningful
	// under pso.
	b := prog.NewBuilder("p")
	x, y := b.Loc("x"), b.Loc("y")
	th := b.Thread()
	th.Store(x, prog.Const(1))
	th.Fence(eg.FenceLW)
	th.Store(y, prog.Const(1))
	t2 := b.Thread()
	t2.Load(x)
	t2.Load(y)
	res := Analyze(b.MustBuild())

	if got := findings(res.Lint("tso"), "useless-fence"); len(got) != 1 {
		t.Errorf("tso: useless-fence findings = %v, want exactly one", got)
	}
	if got := findings(res.Lint("pso"), "useless-fence"); len(got) != 0 {
		t.Errorf("pso: unexpected useless-fence findings = %v", got)
	}
	if got := findings(res.Lint(""), "useless-fence"); len(got) != 0 {
		t.Errorf("no model: unexpected model-aware findings = %v", got)
	}
}

func TestSymmetryCandidate(t *testing.T) {
	// SB's two threads are mirror images over swapped locations: exact
	// symmetry can't group them, the candidate lint must.
	b := prog.NewBuilder("sb")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.Load(y)
	t1 := b.Thread()
	t1.Store(y, prog.Const(1))
	t1.Load(x)
	res := Analyze(b.MustBuild())
	if got := findings(res.Findings, "symmetry-candidate"); len(got) != 1 {
		t.Fatalf("symmetry-candidate findings = %v, want exactly one", got)
	}

	// Exactly equal threads are already covered by prog.SymmetryGroups:
	// no candidate finding.
	b2 := prog.NewBuilder("eq")
	z := b2.Loc("z")
	for i := 0; i < 2; i++ {
		th := b2.Thread()
		th.Store(z, prog.Const(1))
	}
	res2 := Analyze(b2.MustBuild())
	if got := findings(res2.Findings, "symmetry-candidate"); len(got) != 0 {
		t.Errorf("exact-symmetric program reported candidates: %v", got)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Sev: Warn, Code: "dead-store", Thread: 1, PC: 3, Msg: "store to s is never read"}
	if got, want := f.String(), "t1:3: [dead-store] store to s is never read (warn)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	g := Finding{Sev: Info, Code: "symmetry-candidate", Thread: 0, PC: -1, Msg: "m"}
	if !strings.HasPrefix(g.String(), "t0: ") {
		t.Errorf("thread-level finding renders as %q", g.String())
	}
}

func TestCheckDepsUnit(t *testing.T) {
	b := prog.NewBuilder("cd")
	x, y := b.Loc("x"), b.Loc("y")
	th := b.Thread()
	r0 := th.Load(x)                                 // pc 0
	th.Store(y, prog.Add(prog.R(r0), prog.Const(1))) // pc 1
	res := Analyze(b.MustBuild())

	dep := eg.EvID{T: 0, I: 1}
	pcOf := func(eg.EvID) int { return 0 }

	if err := res.CheckDeps(0, 1, nil, []eg.EvID{dep}, nil, pcOf); err != nil {
		t.Errorf("covered data dep rejected: %v", err)
	}
	if err := res.CheckDeps(0, 1, []eg.EvID{dep}, nil, nil, pcOf); err == nil {
		t.Error("addr dep outside the (empty) static set accepted")
	}
	if err := res.CheckDeps(0, 1, nil, []eg.EvID{{T: 1, I: 1}}, nil, pcOf); err == nil {
		t.Error("cross-thread dependency accepted")
	}
	if err := res.CheckDeps(0, 1, nil, []eg.EvID{dep}, nil, func(eg.EvID) int { return 7 }); err == nil {
		t.Error("dependency with out-of-set pc accepted")
	}
	if err := res.CheckDeps(2, 0, nil, nil, nil, pcOf); err == nil {
		t.Error("out-of-range thread accepted")
	}
	if err := res.CheckDeps(0, 9, nil, nil, nil, pcOf); err == nil {
		t.Error("out-of-range pc accepted")
	}
}

func TestConstExpr(t *testing.T) {
	if v, ok := ConstExpr(prog.Add(prog.Const(2), prog.Const(3))); !ok || v != 5 {
		t.Errorf("ConstExpr(2+3) = %d,%v", v, ok)
	}
	if _, ok := ConstExpr(prog.R(prog.Reg(0))); ok {
		t.Error("register expression folded to a constant")
	}
	if _, ok := ConstExpr(nil); ok {
		t.Error("nil expression folded to a constant")
	}
}

func TestBits(t *testing.T) {
	b := newBits(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if got := b.list(); len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Errorf("list = %v", got)
	}
	c := newBits(130)
	c.set(64)
	c.set(1)
	if !b.and(c) {
		t.Error("and reported no change")
	}
	if got := b.list(); len(got) != 1 || got[0] != 64 {
		t.Errorf("after and: %v", got)
	}
	d := newBits(130)
	if d.or(b); len(d.list()) != 1 {
		t.Errorf("after or: %v", d.list())
	}
}
