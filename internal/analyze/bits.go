package analyze

import mathbits "math/bits"

// bits is a fixed-capacity bitset over instruction pcs (or registers).
// The zero-length set is a valid empty set of capacity zero.
type bits []uint64

func newBits(n int) bits {
	return make(bits, (n+63)/64)
}

// set marks bit i (which must be within capacity).
func (b bits) set(i int) {
	b[i/64] |= 1 << (uint(i) % 64)
}

func (b bits) get(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(uint(i)%64)) != 0
}

// or unions o into b, reporting whether b changed. o must not exceed b's
// capacity (all sets in one thread analysis share it).
func (b bits) or(o bits) bool {
	changed := false
	for i, w := range o {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// and intersects o into b, reporting whether b changed. Words beyond o's
// length are cleared (absent sets are empty).
func (b bits) and(o bits) bool {
	changed := false
	for i := range b {
		var w uint64
		if i < len(o) {
			w = o[i]
		}
		if b[i]&w != b[i] {
			b[i] &= w
			changed = true
		}
	}
	return changed
}

func (b bits) clone() bits {
	return append(bits(nil), b...)
}

// list returns the set bits in increasing order, nil when empty.
func (b bits) list() []int {
	var out []int
	for i, w := range b {
		for w != 0 {
			bit := i*64 + mathbits.TrailingZeros64(w)
			out = append(out, bit)
			w &= w - 1
		}
	}
	return out
}
