package analyze

import (
	"fmt"

	"hmc/internal/eg"
)

// CheckDeps verifies that one action's dynamic dependency sets — the
// taints the interpreter computed for the instruction at (t, pc) — are
// covered by the static sets. pcOf maps a dependency event back to the
// instruction that generated it (eg.Event.PC). A non-nil error describes
// the first uncovered dependency; since the static analysis is a sound
// over-approximation of the interpreter's taint rules, any error means
// one of the two has a bug — which is the point of the sanitizer
// (core.Options.CheckDeps).
func (r *Result) CheckDeps(t, pc int, addr, data, ctrl []eg.EvID, pcOf func(eg.EvID) int) error {
	if t < 0 || t >= len(r.Threads) {
		return fmt.Errorf("analyze: CheckDeps thread %d out of range", t)
	}
	tr := &r.Threads[t]
	if pc < 0 || pc >= len(tr.Deps) {
		return fmt.Errorf("analyze: CheckDeps t%d pc %d out of range [0,%d)", t, pc, len(tr.Deps))
	}
	if !tr.Reachable[pc] {
		return fmt.Errorf("analyze: t%d:%d executed dynamically but statically unreachable", t, pc)
	}
	sets := []struct {
		kind   string
		dyn    []eg.EvID
		static []int
	}{
		{"addr", addr, tr.Deps[pc].Addr},
		{"data", data, tr.Deps[pc].Data},
		{"ctrl", ctrl, tr.Deps[pc].Ctrl},
	}
	for _, s := range sets {
		for _, dep := range s.dyn {
			if dep.T != t {
				return fmt.Errorf("analyze: t%d:%d %s dependency %v is not a same-thread load", t, pc, s.kind, dep)
			}
			depPC := pcOf(dep)
			if !containsInt(s.static, depPC) {
				return fmt.Errorf("analyze: t%d:%d dynamic %s dependency on %v (pc %d) not in static set %v",
					t, pc, s.kind, dep, depPC, s.static)
			}
		}
	}
	return nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
