package analyze

import (
	"fmt"
	"sort"
	"strings"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// Severity grades a finding. Error findings describe programs that are
// wrong whenever the flagged code runs; Warn findings are almost
// certainly mistakes; Info findings are structural observations (missed
// symmetry, model-specific no-ops) that a correct test may well contain.
type Severity uint8

const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Finding is one diagnostic, addressed in file:line style as thread:pc.
type Finding struct {
	Sev    Severity
	Code   string // stable kebab-case diagnostic id
	Thread int    // -1 for program-level findings
	PC     int    // -1 for thread- or program-level findings
	Msg    string
}

// String renders the finding in the vet report format:
//
//	t0:2: [useless-fence] lw fence has no ordering effect under tso (info)
func (f Finding) String() string {
	pos := "prog"
	if f.Thread >= 0 && f.PC >= 0 {
		pos = fmt.Sprintf("t%d:%d", f.Thread, f.PC)
	} else if f.Thread >= 0 {
		pos = fmt.Sprintf("t%d", f.Thread)
	}
	return fmt.Sprintf("%s: [%s] %s (%s)", pos, f.Code, f.Msg, f.Sev)
}

// MaxSeverity returns the highest severity among findings (Info if none).
func MaxSeverity(fs []Finding) Severity {
	max := Info
	for _, f := range fs {
		if f.Sev > max {
			max = f.Sev
		}
	}
	return max
}

// Lint returns the full diagnostic set for the program: the
// model-independent findings computed by Analyze plus model-aware ones
// (fences that cannot order anything under the named model). An empty or
// unknown model name skips the model-aware pass.
func (r *Result) Lint(model string) []Finding {
	out := append([]Finding(nil), r.Findings...)
	if effective, ok := fenceEffective[model]; ok {
		for t, code := range r.P.Threads {
			for pc, inst := range code {
				if inst.Op != prog.IFence || !r.Threads[t].Reachable[pc] {
					continue
				}
				if !effective[inst.Fence] {
					out = append(out, Finding{
						Sev: Info, Code: "useless-fence", Thread: t, PC: pc,
						Msg: fmt.Sprintf("fence.%v has no ordering effect under %s", inst.Fence, model),
					})
				}
			}
		}
	}
	sortFindings(out)
	return out
}

// fenceEffective records, per memory model, which fence kinds can affect
// the model's ordering axiom at all. Derived from internal/memmodel: the
// store-buffer models consult full (tso) and full+lw (pso) fences; the
// dependency-aware hardware models (arm, imm) consult all three kinds;
// rc11's sc-fence axiom consults full fences only; sc, ra and relaxed
// never look at fences.
var fenceEffective = map[string]map[eg.FenceKind]bool{
	"sc":      {},
	"tso":     {eg.FenceFull: true},
	"pso":     {eg.FenceFull: true, eg.FenceLW: true},
	"arm":     {eg.FenceFull: true, eg.FenceLW: true, eg.FenceLD: true},
	"ra":      {},
	"rc11":    {eg.FenceFull: true},
	"relaxed": {},
	"imm":     {eg.FenceFull: true, eg.FenceLW: true, eg.FenceLD: true},
}

// lintModelFree computes every model-independent diagnostic.
func (r *Result) lintModelFree() []Finding {
	var out []Finding
	out = append(out, r.lintUnreachable()...)
	out = append(out, r.lintConstConds()...)
	out = append(out, r.lintAddrRange()...)
	out = append(out, r.lintDeadStores()...)
	out = append(out, r.lintUnwrittenRegs()...)
	out = append(out, r.lintFencePositions()...)
	out = append(out, r.lintRacyPairs()...)
	out = append(out, r.lintSymmetryCandidates()...)
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// lintUnreachable reports maximal runs of unreachable instructions.
func (r *Result) lintUnreachable() []Finding {
	var out []Finding
	for t := range r.P.Threads {
		reach := r.Threads[t].Reachable
		for pc := 0; pc < len(reach); {
			if reach[pc] {
				pc++
				continue
			}
			end := pc
			for end+1 < len(reach) && !reach[end+1] {
				end++
			}
			msg := "instruction is unreachable"
			if end > pc {
				msg = fmt.Sprintf("instructions %d..%d are unreachable", pc, end)
			}
			out = append(out, Finding{Sev: Info, Code: "unreachable", Thread: t, PC: pc, Msg: msg})
			pc = end + 1
		}
	}
	return out
}

// lintConstConds reports branches, assumes and asserts whose condition is
// a compile-time constant.
func (r *Result) lintConstConds() []Finding {
	var out []Finding
	for t, code := range r.P.Threads {
		for pc, inst := range code {
			if !r.Threads[t].Reachable[pc] {
				continue
			}
			v, ok := ConstExpr(inst.Cond)
			if !ok || inst.Cond == nil {
				continue
			}
			switch inst.Op {
			case prog.IBranch:
				way := "always"
				if v == 0 {
					way = "never"
				}
				out = append(out, Finding{Sev: Info, Code: "const-branch", Thread: t, PC: pc,
					Msg: fmt.Sprintf("branch condition is constant: %s taken", way)})
			case prog.IAssume:
				if v == 0 {
					out = append(out, Finding{Sev: Warn, Code: "blocked-assume", Thread: t, PC: pc,
						Msg: "assume is statically false: every execution reaching it blocks"})
				} else {
					out = append(out, Finding{Sev: Info, Code: "vacuous-assume", Thread: t, PC: pc,
						Msg: "assume is vacuously true"})
				}
			case prog.IAssert:
				if v == 0 {
					out = append(out, Finding{Sev: Error, Code: "failing-assert", Thread: t, PC: pc,
						Msg: "assertion is statically false: fails whenever reached"})
				} else {
					out = append(out, Finding{Sev: Warn, Code: "vacuous-assert", Thread: t, PC: pc,
						Msg: "assertion is vacuously true: it can never fail"})
				}
			}
		}
	}
	return out
}

// lintAddrRange reports constant addresses outside the location table.
func (r *Result) lintAddrRange() []Finding {
	var out []Finding
	for t, code := range r.P.Threads {
		for pc, inst := range code {
			if !r.Threads[t].Reachable[pc] || inst.Addr == nil {
				continue
			}
			switch inst.Op {
			case prog.ILoad, prog.IStore, prog.ICAS, prog.IFAdd, prog.IXchg:
				if v, ok := ConstExpr(inst.Addr); ok && (v < 0 || v >= int64(r.P.NumLocs)) {
					out = append(out, Finding{Sev: Warn, Code: "addr-range", Thread: t, PC: pc,
						Msg: fmt.Sprintf("address %d out of range [0,%d): executing this access is a runtime error", v, r.P.NumLocs)})
				}
			}
		}
	}
	return out
}

// lintDeadStores reports stores to locations no instruction ever reads.
// When the program has an Exists predicate the final value may still be
// observed (the predicate is an opaque closure over all of memory), so
// the finding is informational; without one the store is provably dead.
func (r *Result) lintDeadStores() []Finding {
	var out []Finding
	for t, code := range r.P.Threads {
		for pc, inst := range code {
			if !r.Threads[t].Reachable[pc] || inst.Op != prog.IStore {
				continue
			}
			v, ok := ConstExpr(inst.Addr)
			if !ok || v < 0 || v >= int64(r.P.NumLocs) {
				continue
			}
			if !r.Foot.NeverRead(eg.Loc(v)) {
				continue
			}
			name := r.P.LocName(eg.Loc(v))
			if r.P.Exists != nil {
				out = append(out, Finding{Sev: Info, Code: "dead-store", Thread: t, PC: pc,
					Msg: fmt.Sprintf("store to %s is never read by any instruction (final-state predicate may still observe it)", name)})
			} else {
				out = append(out, Finding{Sev: Warn, Code: "dead-store", Thread: t, PC: pc,
					Msg: fmt.Sprintf("store to %s is never read", name)})
			}
		}
	}
	return out
}

// lintUnwrittenRegs reports registers read before any possible write.
// Registers are zero-initialized by the interpreter, so this is not a
// crash — but a register whose first use precedes every assignment on
// some path almost always indicates a mis-built program.
func (r *Result) lintUnwrittenRegs() []Finding {
	var out []Finding
	for t, code := range r.P.Threads {
		assigned := mustAssigned(code, r.P.NumRegs[t])
		seen := map[[2]int]bool{} // (pc, reg) dedup
		for pc, inst := range code {
			if !r.Threads[t].Reachable[pc] || assigned[pc] == nil {
				continue
			}
			for _, e := range readExprs(inst) {
				for _, reg := range e.Regs(nil) {
					if int(reg) >= r.P.NumRegs[t] || assigned[pc].get(int(reg)) {
						continue
					}
					k := [2]int{pc, int(reg)}
					if seen[k] {
						continue
					}
					seen[k] = true
					out = append(out, Finding{Sev: Warn, Code: "unwritten-register", Thread: t, PC: pc,
						Msg: fmt.Sprintf("register r%d may be read before any write (reads as 0)", reg)})
				}
			}
		}
	}
	return out
}

// readExprs lists the expressions an instruction evaluates.
func readExprs(inst prog.Instr) []*prog.Expr {
	var out []*prog.Expr
	for _, e := range []*prog.Expr{inst.Addr, inst.Val, inst.Old, inst.New, inst.Cond} {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// destRegs lists the registers an instruction assigns.
func destRegs(inst prog.Instr) []prog.Reg {
	switch inst.Op {
	case prog.ILoad, prog.IMov, prog.IFAdd, prog.IXchg:
		return []prog.Reg{inst.Dst}
	case prog.ICAS:
		if inst.Succ >= 0 {
			return []prog.Reg{inst.Dst, inst.Succ}
		}
		return []prog.Reg{inst.Dst}
	}
	return nil
}

// mustAssigned runs the definite-assignment dataflow for one thread:
// out[pc] is the set of registers assigned on *every* path from entry to
// pc (intersection join), nil for unreachable pcs.
func mustAssigned(code []prog.Instr, numRegs int) []bits {
	n := len(code)
	in := make([]bits, n+1)
	in[0] = newBits(numRegs)
	work := []int{0}
	propagate := func(pc int, st bits) {
		if pc < 0 || pc > n {
			return
		}
		if in[pc] == nil {
			in[pc] = st.clone()
			work = append(work, pc)
		} else if in[pc].and(st) {
			work = append(work, pc)
		}
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc >= n {
			continue
		}
		st := in[pc].clone()
		inst := code[pc]
		for _, d := range destRegs(inst) {
			if int(d) < numRegs {
				st.set(int(d))
			}
		}
		switch inst.Op {
		case prog.IBranch:
			if v, ok := ConstExpr(inst.Cond); ok {
				if v != 0 {
					propagate(inst.Target, st)
				} else {
					propagate(pc+1, st)
				}
			} else {
				propagate(inst.Target, st)
				propagate(pc+1, st)
			}
		case prog.IJmp:
			propagate(inst.Target, st)
		case prog.IAssume:
			if v, ok := ConstExpr(inst.Cond); ok && v == 0 {
				break
			}
			propagate(pc+1, st)
		default:
			propagate(pc+1, st)
		}
	}
	return in[:n]
}

// lintFencePositions reports fences that cannot order anything because no
// memory access can execute before (or after) them on any path.
func (r *Result) lintFencePositions() []Finding {
	var out []Finding
	for t, code := range r.P.Threads {
		before, after := accessReach(code, r.Threads[t].Reachable)
		for pc, inst := range code {
			if inst.Op != prog.IFence || !r.Threads[t].Reachable[pc] {
				continue
			}
			switch {
			case !before[pc] && !after[pc]:
				out = append(out, Finding{Sev: Warn, Code: "useless-fence", Thread: t, PC: pc,
					Msg: "no memory access can execute before or after this fence: it cannot order anything"})
			case !before[pc]:
				out = append(out, Finding{Sev: Warn, Code: "useless-fence", Thread: t, PC: pc,
					Msg: "no memory access can execute before this fence on any path: it cannot order anything"})
			case !after[pc]:
				out = append(out, Finding{Sev: Warn, Code: "useless-fence", Thread: t, PC: pc,
					Msg: "no memory access can execute after this fence on any path: it cannot order anything"})
			}
		}
	}
	return out
}

// accessReach computes, per pc, whether some path from entry executes a
// memory access strictly before pc (before) and whether some path from pc
// executes one strictly after (after). Constant-folded control flow is
// respected, matching the reachability analysis.
func accessReach(code []prog.Instr, reachable []bool) (before, after []bool) {
	n := len(code)
	isAccess := func(pc int) bool {
		switch code[pc].Op {
		case prog.ILoad, prog.IStore, prog.ICAS, prog.IFAdd, prog.IXchg:
			return true
		}
		return false
	}
	succs := make([][]int, n)
	for pc, inst := range code {
		if !reachable[pc] {
			continue
		}
		switch inst.Op {
		case prog.IBranch:
			if v, ok := ConstExpr(inst.Cond); ok {
				if v != 0 {
					succs[pc] = []int{inst.Target}
				} else {
					succs[pc] = []int{pc + 1}
				}
			} else {
				succs[pc] = []int{inst.Target, pc + 1}
			}
		case prog.IJmp:
			succs[pc] = []int{inst.Target}
		case prog.IAssume:
			if v, ok := ConstExpr(inst.Cond); ok && v == 0 {
				break
			}
			succs[pc] = []int{pc + 1}
		default:
			succs[pc] = []int{pc + 1}
		}
	}

	// before: forward may-analysis from the entry.
	before = make([]bool, n)
	seen := make([]bool, n+1)
	type node struct {
		pc  int
		acc bool
	}
	stack := []node{{0, false}}
	accIn := make([]bool, n+1)
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.pc >= n {
			continue
		}
		if seen[nd.pc] && (!nd.acc || accIn[nd.pc]) {
			continue
		}
		seen[nd.pc] = true
		if nd.acc {
			accIn[nd.pc] = true
			before[nd.pc] = true
		}
		out := nd.acc || isAccess(nd.pc)
		for _, s := range succs[nd.pc] {
			if s >= 0 && s <= n {
				stack = append(stack, node{s, out})
			}
		}
	}

	// after: backward may-analysis, iterated to fixpoint (cheap: programs
	// are tiny).
	after = make([]bool, n)
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			if !reachable[pc] || after[pc] {
				continue
			}
			for _, s := range succs[pc] {
				if s < n && (isAccess(s) || after[s]) {
					after[pc] = true
					changed = true
					break
				}
			}
		}
	}
	return before, after
}

// lintRacyPairs reports statically-possible data races from the
// footprint: cross-thread conflicting access pairs (same location, at
// least one write) with at least one plain side — the static
// over-approximation of core.CheckRaces' rc11 race definition. No
// happens-before is computed, so a correctly synchronized program (fences,
// release/acquire chains) still gets the finding; it is Info severity for
// exactly that reason, and most litmus tests race on purpose. CheckRaces
// is the dynamic confirmation.
func (r *Result) lintRacyPairs() []Finding {
	var out []Finding
	for l := 0; l < r.Foot.NumLocs; l++ {
		loc := eg.Loc(l)
		for _, pr := range r.Foot.RacyPairs(loc) {
			var kinds []string
			if pr.WW {
				kinds = append(kinds, "write/write")
			}
			if pr.WR {
				kinds = append(kinds, "write/read")
			}
			out = append(out, Finding{Sev: Info, Code: "racy-pair", Thread: pr.A, PC: -1,
				Msg: fmt.Sprintf("unsynchronized %s pair on %s between t%d and t%d may race (plain access, no static happens-before; `hmc -races` confirms dynamically)",
					strings.Join(kinds, " and "), r.P.LocName(loc), pr.A, pr.B)})
		}
	}
	return out
}

// lintSymmetryCandidates reports groups of threads whose code is
// identical up to a consistent renaming of locations and registers —
// near-symmetry that prog.SymmetryGroups (and hence Options.Symmetry,
// which requires exactly equal code) cannot exploit.
func (r *Result) lintSymmetryCandidates() []Finding {
	exactGroup := map[int]int{}
	for gi, g := range r.P.SymmetryGroups() {
		for _, t := range g {
			exactGroup[t] = gi + 1
		}
	}
	byCanon := map[string][]int{}
	for t := range r.P.Threads {
		if c, ok := canonThread(r.P, t); ok {
			byCanon[c] = append(byCanon[c], t)
		}
	}
	keys := make([]string, 0, len(byCanon))
	for k := range byCanon {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Finding
	for _, k := range keys {
		group := byCanon[k]
		if len(group) < 2 {
			continue
		}
		// Only report groups that add something beyond exact equality:
		// some pair of members not already in a common exact group.
		novel := false
		for i := 0; i < len(group) && !novel; i++ {
			for j := i + 1; j < len(group); j++ {
				gi, gj := exactGroup[group[i]], exactGroup[group[j]]
				if gi == 0 || gj == 0 || gi != gj {
					novel = true
					break
				}
			}
		}
		if !novel {
			continue
		}
		names := make([]string, len(group))
		for i, t := range group {
			names[i] = fmt.Sprintf("t%d", t)
		}
		out = append(out, Finding{Sev: Info, Code: "symmetry-candidate", Thread: group[0], PC: -1,
			Msg: fmt.Sprintf("threads %s are identical up to location/register renaming; exact symmetry reduction (Options.Symmetry) cannot exploit this", strings.Join(names, ", "))})
	}
	return out
}

// canonThread renders thread t's code with registers and (constant)
// location addresses renamed in first-use order. It fails when the thread
// has a register-dependent address, which defeats location renaming.
func canonThread(pr *prog.Program, t int) (string, bool) {
	regMap := map[prog.Reg]prog.Reg{}
	locMap := map[int64]int64{}
	reg := func(r prog.Reg) prog.Reg {
		if r < 0 {
			return r
		}
		if c, ok := regMap[r]; ok {
			return c
		}
		c := prog.Reg(len(regMap))
		regMap[r] = c
		return c
	}
	var renameExpr func(e *prog.Expr) *prog.Expr
	renameExpr = func(e *prog.Expr) *prog.Expr {
		if e == nil {
			return nil
		}
		c := *e
		if e.Op == prog.EReg {
			c.R = reg(e.R)
		}
		c.A = renameExpr(e.A)
		c.B = renameExpr(e.B)
		return &c
	}
	canonAddr := func(e *prog.Expr) (*prog.Expr, bool) {
		v, ok := ConstExpr(e)
		if !ok {
			return nil, false
		}
		if c, seen := locMap[v]; seen {
			return prog.Const(c), true
		}
		c := int64(len(locMap))
		locMap[v] = c
		return prog.Const(c), true
	}

	var sb strings.Builder
	for _, inst := range pr.Threads[t] {
		c := inst
		if c.Addr != nil {
			a, ok := canonAddr(c.Addr)
			if !ok {
				return "", false
			}
			c.Addr = a
		}
		c.Old = renameExpr(c.Old)
		c.New = renameExpr(c.New)
		c.Val = renameExpr(c.Val)
		c.Cond = renameExpr(c.Cond)
		switch c.Op {
		case prog.ILoad, prog.IMov, prog.ICAS, prog.IFAdd, prog.IXchg:
			c.Dst = reg(c.Dst)
		}
		if c.Op == prog.ICAS && c.Succ >= 0 {
			c.Succ = reg(c.Succ)
		}
		fmt.Fprintf(&sb, "%v|m%d\n", c, c.Mode)
	}
	return sb.String(), true
}
