package analyze

import (
	"fmt"
	"sort"
	"strings"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// Footprint is the static location access map: which threads may read or
// write each shared location, considering only reachable instructions.
// Accesses through a non-constant address expression cannot be resolved
// statically; the owning thread is then recorded as an unknown reader or
// writer and conservatively counts as accessing *every* location.
type Footprint struct {
	NumLocs int
	// Reads[l][t] / Writes[l][t]: thread t has a reachable instruction
	// reading/writing location l through a constant address. RMWs count
	// as both.
	Reads  [][]bool
	Writes [][]bool
	// PlainReads[l][t] / PlainWrites[l][t]: the subset of the above made
	// through a plain (ModePlain, unannotated) access — the accesses that
	// can participate in an rc11 data race. Annotated atomics (rlx and
	// up) never race with each other.
	PlainReads  [][]bool
	PlainWrites [][]bool
	// UnknownRead[t] / UnknownWrite[t]: thread t has a reachable access
	// with a register-dependent address.
	UnknownRead  []bool
	UnknownWrite []bool
	// UnknownPlainRead[t] / UnknownPlainWrite[t]: as above, restricted to
	// plain accesses.
	UnknownPlainRead  []bool
	UnknownPlainWrite []bool
}

// footprint derives the access map from the per-thread reachability.
func footprint(p *prog.Program, r *Result) *Footprint {
	f := &Footprint{
		NumLocs:           p.NumLocs,
		Reads:             make([][]bool, p.NumLocs),
		Writes:            make([][]bool, p.NumLocs),
		PlainReads:        make([][]bool, p.NumLocs),
		PlainWrites:       make([][]bool, p.NumLocs),
		UnknownRead:       make([]bool, len(p.Threads)),
		UnknownWrite:      make([]bool, len(p.Threads)),
		UnknownPlainRead:  make([]bool, len(p.Threads)),
		UnknownPlainWrite: make([]bool, len(p.Threads)),
	}
	for l := range f.Reads {
		f.Reads[l] = make([]bool, len(p.Threads))
		f.Writes[l] = make([]bool, len(p.Threads))
		f.PlainReads[l] = make([]bool, len(p.Threads))
		f.PlainWrites[l] = make([]bool, len(p.Threads))
	}
	mark := func(t int, addr *prog.Expr, read, write, plain bool) {
		v, isConst := ConstExpr(addr)
		if !isConst {
			if read {
				f.UnknownRead[t] = true
				f.UnknownPlainRead[t] = f.UnknownPlainRead[t] || plain
			}
			if write {
				f.UnknownWrite[t] = true
				f.UnknownPlainWrite[t] = f.UnknownPlainWrite[t] || plain
			}
			return
		}
		if v < 0 || v >= int64(p.NumLocs) {
			return // out-of-range constant: its own diagnostic; executes as an error
		}
		if read {
			f.Reads[v][t] = true
			f.PlainReads[v][t] = f.PlainReads[v][t] || plain
		}
		if write {
			f.Writes[v][t] = true
			f.PlainWrites[v][t] = f.PlainWrites[v][t] || plain
		}
	}
	for t, code := range p.Threads {
		for pc, inst := range code {
			if !r.Threads[t].Reachable[pc] {
				continue
			}
			plain := inst.Mode == eg.ModePlain
			switch inst.Op {
			case prog.ILoad:
				mark(t, inst.Addr, true, false, plain)
			case prog.IStore:
				mark(t, inst.Addr, false, true, plain)
			case prog.ICAS, prog.IFAdd, prog.IXchg:
				mark(t, inst.Addr, true, true, plain)
			}
		}
	}
	return f
}

// RacyPair is one statically-possible data race: two threads with
// conflicting accesses (same location, at least one a write) where at
// least one side is a plain access.
type RacyPair struct {
	Loc  eg.Loc
	A, B int  // thread ids, A < B
	WW   bool // some plain-involving write/write conflict
	WR   bool // some plain-involving write/read conflict
}

// RacyPairs lists the cross-thread pairs that may race on l. This is the
// static over-approximation of core.CheckRaces' dynamic definition —
// conflicting accesses, cross-thread, not both atomic — with no
// happens-before: fences and release/acquire chains do not remove pairs,
// so a pair here is "may race", never "does race". Register-dependent
// accesses conservatively touch every location.
func (f *Footprint) RacyPairs(l eg.Loc) []RacyPair {
	n := len(f.UnknownRead)
	var out []RacyPair
	for a := 0; a < n; a++ {
		wA := f.Writes[l][a] || f.UnknownWrite[a]
		rA := f.Reads[l][a] || f.UnknownRead[a]
		pwA := f.PlainWrites[l][a] || f.UnknownPlainWrite[a]
		prA := f.PlainReads[l][a] || f.UnknownPlainRead[a]
		for b := a + 1; b < n; b++ {
			wB := f.Writes[l][b] || f.UnknownWrite[b]
			rB := f.Reads[l][b] || f.UnknownRead[b]
			pwB := f.PlainWrites[l][b] || f.UnknownPlainWrite[b]
			prB := f.PlainReads[l][b] || f.UnknownPlainRead[b]
			p := RacyPair{
				Loc: l, A: a, B: b,
				WW: (pwA && wB) || (wA && pwB),
				WR: (pwA && rB) || (wA && prB) || (pwB && rA) || (wB && prA),
			}
			if p.WW || p.WR {
				out = append(out, p)
			}
		}
	}
	return out
}

// readers returns the set of threads that may read l.
func (f *Footprint) readers(l eg.Loc) []int {
	var out []int
	for t := range f.UnknownRead {
		if f.Reads[l][t] || f.UnknownRead[t] {
			out = append(out, t)
		}
	}
	return out
}

// writers returns the set of threads that may write l.
func (f *Footprint) writers(l eg.Loc) []int {
	var out []int
	for t := range f.UnknownWrite {
		if f.Writes[l][t] || f.UnknownWrite[t] {
			out = append(out, t)
		}
	}
	return out
}

// accessors returns the set of threads that may touch l at all.
func (f *Footprint) accessors(l eg.Loc) []int {
	seen := map[int]bool{}
	for _, t := range f.readers(l) {
		seen[t] = true
	}
	for _, t := range f.writers(l) {
		seen[t] = true
	}
	return sortedInts(seen)
}

// ThreadLocal reports that at most one thread may access l. Every event
// on a thread-local location in any execution graph belongs to that one
// thread, so cross-thread communication through l is impossible.
func (f *Footprint) ThreadLocal(l eg.Loc) bool {
	return len(f.accessors(l)) <= 1
}

// ReadOnly reports that no reachable instruction may write l: its value
// is the initial 0 in every execution.
func (f *Footprint) ReadOnly(l eg.Loc) bool {
	return len(f.writers(l)) == 0
}

// NeverRead reports that no reachable instruction may read l. Stores to
// such a location are dead as far as *instructions* are concerned; the
// program's Exists predicate may still observe the final value, which is
// why dead-store elision in the explorer only skips branching work, never
// the event itself.
func (f *Footprint) NeverRead(l eg.Loc) bool {
	return len(f.readers(l)) == 0
}

// SingleWriter reports that all writes to l (if any) come from a single
// thread, returning that thread. With one writer, coherence already fixes
// the co order of l's writes to their program order, so a new write's
// only consistent placement is coherence-maximal.
func (f *Footprint) SingleWriter(l eg.Loc) (int, bool) {
	ws := f.writers(l)
	switch len(ws) {
	case 0:
		return -1, true
	case 1:
		return ws[0], true
	}
	return -1, false
}

// Summary renders the footprint with source-level location names, one
// line per location — the `hmc vet` report body.
func (f *Footprint) Summary(p *prog.Program) string {
	var sb strings.Builder
	for l := 0; l < f.NumLocs; l++ {
		loc := eg.Loc(l)
		var tags []string
		switch {
		case f.ThreadLocal(loc) && len(f.accessors(loc)) == 0:
			tags = append(tags, "unused")
		case f.ThreadLocal(loc):
			tags = append(tags, fmt.Sprintf("thread-local(t%d)", f.accessors(loc)[0]))
		}
		if f.ReadOnly(loc) && len(f.readers(loc)) > 0 {
			tags = append(tags, "read-only")
		}
		if f.NeverRead(loc) && len(f.writers(loc)) > 0 {
			tags = append(tags, "never-read")
		}
		if w, ok := f.SingleWriter(loc); ok && w >= 0 && !f.ThreadLocal(loc) {
			tags = append(tags, fmt.Sprintf("single-writer(t%d)", w))
		}
		tag := ""
		if len(tags) > 0 {
			tag = "  [" + strings.Join(tags, ", ") + "]"
		}
		fmt.Fprintf(&sb, "  %-8s R:%s W:%s%s\n",
			p.LocName(loc), threadSet(f.readers(loc)), threadSet(f.writers(loc)), tag)
	}
	return sb.String()
}

func threadSet(ts []int) string {
	if len(ts) == 0 {
		return "{}"
	}
	sort.Ints(ts)
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("t%d", t)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
