package crossval

import (
	"fmt"
	"testing"

	"hmc/internal/axenum"
	"hmc/internal/core"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// refCompare runs the graph explorer and the herd-style reference
// enumerator and diffs their execution sets (not just final states).
func refCompare(t *testing.T, p *prog.Program, model string) (missing, extra, dups int, refN int) {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := axenum.Explore(p, axenum.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Explore(p, core.Options{Model: m, DedupSafeguard: true, CollectKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	gotSet := map[string]bool{}
	for _, k := range got.Keys {
		gotSet[k] = true
	}
	for k := range ref.Keys {
		if !gotSet[k] {
			missing++
		}
	}
	for k := range gotSet {
		if !ref.Keys[k] {
			extra++
		}
	}
	return missing, extra, got.Duplicates, ref.Consistent
}

// TestCorpusAgainstReference checks, for every litmus test and every
// model, that the explorer's execution set exactly equals the reference
// enumeration and that no execution is explored twice.
//
// The one sanctioned difference: under the coherence-only "relaxed" model
// the value-oracle reference manufactures out-of-thin-air executions
// (self-justifying value cycles), which constructive exploration — like
// real hardware — never produces. For that model only, the explorer may
// be a subset of the reference.
func TestCorpusAgainstReference(t *testing.T) {
	for _, tc := range corpusForRef() {
		for _, model := range memmodel.Names() {
			missing, extra, dups, _ := refCompare(t, tc.p, model)
			if extra != 0 || dups != 0 {
				t.Errorf("%s under %s: extra=%d duplicates=%d",
					tc.name, model, extra, dups)
			}
			if missing != 0 && model != "relaxed" {
				t.Errorf("%s under %s: %d executions missed", tc.name, model, missing)
			}
		}
	}
}

type refCase struct {
	name string
	p    *prog.Program
}

func corpusForRef() []refCase {
	var out []refCase
	for _, tc := range corpusTests() {
		out = append(out, refCase{tc.Name, tc.P})
	}
	return out
}

// TestRandomAgainstReference diffs execution sets on random programs:
// soundness (no spurious executions), completeness (nothing missed, except
// out-of-thin-air value cycles under "relaxed", which constructive
// exploration never builds), and optimality (no duplicates).
func TestRandomAgainstReference(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 40
	}
	for seed := int64(0); seed < int64(n); seed++ {
		p := randomProgram(seed)
		size := 0
		for _, th := range p.Threads {
			size += len(th)
		}
		if size > 7 {
			continue // keep the reference enumeration tractable
		}
		for _, model := range memmodel.Names() {
			missing, extra, dups, refN := refCompare(t, p, model)
			if extra != 0 {
				t.Errorf("%s under %s: %d spurious executions (soundness violated)", p.Name, model, extra)
			}
			if missing != 0 && model != "relaxed" {
				t.Errorf("%s under %s: %d/%d executions missed", p.Name, model, missing, refN)
			}
			if dups != 0 {
				t.Errorf("%s under %s: %d duplicate executions", p.Name, model, dups)
			}
		}
	}
}

// TestReferenceSelfCheck sanity-checks the reference enumerator itself on
// hand-countable programs.
func TestReferenceSelfCheck(t *testing.T) {
	m, _ := memmodel.ByName("relaxed")
	for _, tc := range []struct {
		name string
		want int
	}{
		{"SB", 4}, {"MP", 4}, {"LB", 4}, {"IRIW", 16}, {"CoRR", 3}, {"inc(2)", 2},
	} {
		c, ok := corpusByName(tc.name)
		if !ok {
			t.Fatalf("missing corpus test %s", tc.name)
		}
		res, err := axenum.Explore(c, axenum.Options{Model: m})
		if err != nil {
			t.Fatal(err)
		}
		if res.Consistent != tc.want {
			t.Errorf("reference on %s under relaxed: %d executions, want %d", tc.name, res.Consistent, tc.want)
		}
		if res.Candidates < res.Consistent {
			t.Errorf("reference on %s: candidates %d < consistent %d", tc.name, res.Candidates, res.Consistent)
		}
	}
}

func TestReferenceCandidateBlowup(t *testing.T) {
	// The point of the T2 comparison: candidate count ≫ consistent count.
	c, _ := corpusByName("inc(3)")
	if c == nil {
		var ok bool
		c, ok = corpusByName("inc(2)")
		if !ok {
			t.Skip("no inc corpus entry")
		}
	}
	m, _ := memmodel.ByName("sc")
	res, err := axenum.Explore(c, axenum.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates <= 2*res.Consistent {
		t.Errorf("expected candidate blowup on IRIW: candidates=%d consistent=%d",
			res.Candidates, res.Consistent)
	}
}

var _ = fmt.Sprintf
