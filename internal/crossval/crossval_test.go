// Package crossval cross-validates the two independent checker
// implementations: the HMC-style execution-graph explorer (internal/core,
// axiomatic models) against the operational explicit-state machines
// (internal/operational). For SC, TSO and PSO both must observe exactly
// the same set of final states on every program — this is the strongest
// end-to-end evidence that the axiomatic models, the dependency-tracking
// interpreter, and the revisit machinery are correct.
package crossval

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/operational"
	"hmc/internal/prog"
)

// coreFinals runs the graph explorer and returns the sorted set of
// canonical final-state keys.
func coreFinals(t *testing.T, p *prog.Program, model string) ([]string, *core.Result) {
	t.Helper()
	m, err := memmodel.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	finals := map[string]bool{}
	res, err := core.Explore(p, core.Options{
		Model:          m,
		DedupSafeguard: true,
		OnExecution: func(g *eg.Graph, fs prog.FinalState) {
			if err := g.CheckWellFormed(); err != nil {
				t.Errorf("ill-formed execution graph: %v\n%v", err, g)
			}
			finals[operational.FinalKey(fs)] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(finals))
	for k := range finals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, res
}

// machineFinals runs the memoized operational machine.
func machineFinals(t *testing.T, p *prog.Program, level operational.Level) []string {
	t.Helper()
	res, err := operational.Explore(p, operational.Options{Level: level, Memo: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.FinalKeys()
}

var levels = map[string]operational.Level{
	"sc":  operational.SC,
	"tso": operational.TSO,
	"pso": operational.PSO,
}

func compare(t *testing.T, name string, p *prog.Program) {
	t.Helper()
	for model, level := range levels {
		got, res := coreFinals(t, p, model)
		want := machineFinals(t, p, level)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Errorf("%s under %s: final-state sets differ\ngraph explorer (%d): %v\nmachine        (%d): %v\nprogram:\n%v",
				name, model, len(got), got, len(want), want, p)
		}
		if res.Duplicates != 0 {
			t.Errorf("%s under %s: %d duplicate executions", name, model, res.Duplicates)
		}
		if res.StuckReads != 0 {
			t.Errorf("%s under %s: %d stuck reads", name, model, res.StuckReads)
		}
	}
}

// corpusTests exposes the litmus corpus to the reference tests.
func corpusTests() []litmus.Test { return litmus.Corpus() }

// corpusByName fetches one corpus program.
func corpusByName(name string) (*prog.Program, bool) {
	tc, ok := litmus.ByName(name)
	if !ok {
		return nil, false
	}
	return tc.P, true
}

func TestCorpusAgainstMachines(t *testing.T) {
	for _, tc := range litmus.Corpus() {
		compare(t, tc.Name, tc.P)
	}
}

// randomProgram delegates to the shared generator in internal/gen so the
// cross-validation suite and the static-analysis property tests exercise
// the exact same program distribution.
func randomProgram(seed int64) *prog.Program { return gen.Random(seed) }

func TestRandomProgramsAgainstMachines(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	for seed := int64(0); seed < int64(n); seed++ {
		compare(t, fmt.Sprintf("rand-%d", seed), randomProgram(seed))
	}
}

// TestRandomProgramsOptimality checks duplicate-freedom for the weaker
// models too (ra, relaxed, imm have no operational oracle, but optimality
// and extensibility must still hold).
func TestRandomProgramsOptimality(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	for seed := int64(0); seed < int64(n); seed++ {
		p := randomProgram(seed)
		for _, model := range []string{"arm", "ra", "rc11", "relaxed", "imm"} {
			_, res := coreFinals(t, p, model)
			if res.Duplicates != 0 {
				t.Errorf("%s under %s: %d duplicates\n%v", p.Name, model, res.Duplicates, p)
			}
			if res.StuckReads != 0 {
				t.Errorf("%s under %s: %d stuck reads\n%v", p.Name, model, res.StuckReads, p)
			}
		}
	}
}

// TestModelNestingOnRandomPrograms checks that the per-model execution
// counts respect model strength: SC ⊆ TSO ⊆ PSO ⊆ Relaxed and SC ⊆ RA/IMM
// ⊆ Relaxed (as sets of executions, approximated by counts of final
// states, which are monotone under set inclusion).
func TestModelNestingOnRandomPrograms(t *testing.T) {
	n := 150
	if testing.Short() {
		n = 30
	}
	chains := [][]string{
		{"sc", "tso", "pso", "arm", "imm", "relaxed"},
		{"sc", "ra", "relaxed"},
		{"sc", "rc11", "relaxed"},
	}
	for seed := int64(0); seed < int64(n); seed++ {
		p := randomProgram(seed)
		finals := map[string]map[string]bool{}
		for _, model := range memmodel.Names() {
			keys, _ := coreFinals(t, p, model)
			set := map[string]bool{}
			for _, k := range keys {
				set[k] = true
			}
			finals[model] = set
		}
		for _, chain := range chains {
			for i := 0; i+1 < len(chain); i++ {
				lo, hi := chain[i], chain[i+1]
				for k := range finals[lo] {
					if !finals[hi][k] {
						t.Errorf("%s: final state %q observable under %s but not under %s",
							p.Name, k, lo, hi)
					}
				}
			}
		}
	}
}
