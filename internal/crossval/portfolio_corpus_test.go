package crossval

import (
	"context"
	"testing"

	"hmc/internal/backend"
	"hmc/internal/memmodel"
)

// TestPortfolioCorpus folds the cross-validation suite onto the backend
// interface: the verdict portfolio runs over the full litmus corpus under
// every registered model, and every applicable backend must agree — no
// Disagreement, and the portfolio's winning digest identical to a plain
// single-engine DFS run. This is the acceptance gate for the portfolio:
// racing backends must never change what a job answers, only how fast and
// how well-attested the answer is.
func TestPortfolioCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus × models portfolio sweep")
	}
	dfs := &backend.DFS{}
	for _, tc := range corpusTests() {
		for _, model := range memmodel.Names() {
			tc, model := tc, model
			t.Run(tc.Name+"/"+model, func(t *testing.T) {
				t.Parallel()
				spec := backend.Spec{Model: model}
				out, err := backend.NewPortfolio(backend.PortfolioOptions{}).
					Run(context.Background(), tc.P, spec)
				if err != nil {
					t.Fatalf("portfolio: %v", err)
				}
				if out.Disagreement != nil {
					t.Fatalf("backends disagree: %s\nwinner=%+v\ndissenter=%+v",
						out.Disagreement.Diff, out.Disagreement.Winner, out.Disagreement.Dissenter)
				}
				if out.Verdict == nil || !out.Verdict.Exhaustive {
					t.Fatalf("no exhaustive portfolio verdict: %+v", out.Verdict)
				}
				ref, err := dfs.Run(context.Background(), tc.P, spec)
				if err != nil {
					t.Fatalf("dfs reference: %v", err)
				}
				if diff := backend.Diff(ref, out.Verdict); diff != "" {
					t.Errorf("portfolio verdict diverges from single-engine DFS: %s", diff)
				}
				if out.Verdict.OutcomeDigest != ref.OutcomeDigest {
					t.Errorf("digest %s (portfolio, won by %s) != %s (dfs)",
						out.Verdict.OutcomeDigest, out.Verdict.Backend, ref.OutcomeDigest)
				}
			})
		}
	}
}
