package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDecideDeterministic: the same (seed, boundary, kind, ordinal)
// always decides the same way, different seeds decide differently
// somewhere, and the hit rate lands near the requested percentage.
func TestDecideDeterministic(t *testing.T) {
	const trials = 10000
	hits, diverged := 0, false
	for n := int64(1); n <= trials; n++ {
		a := decide(1, "http", "drop", n, 30)
		if a != decide(1, "http", "drop", n, 30) {
			t.Fatalf("decision for ordinal %d not stable", n)
		}
		if a != decide(2, "http", "drop", n, 30) {
			diverged = true
		}
		if a {
			hits++
		}
	}
	if !diverged {
		t.Error("seeds 1 and 2 produced identical schedules over 10k ordinals")
	}
	rate := float64(hits) / trials
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("30%% drop rate measured at %.1f%%", rate*100)
	}
	if decide(1, "http", "drop", 7, 0) {
		t.Error("0%% must never fire")
	}
	if !decide(1, "http", "drop", 7, 100) {
		t.Error("100%% must always fire")
	}
}

// TestMixSeparatesBoundaries: the fault coordinates are independent —
// "drop" firing on ordinal n says nothing about "err5xx" on n.
func TestMixSeparatesBoundaries(t *testing.T) {
	same := 0
	for n := int64(1); n <= 1000; n++ {
		if decide(9, "http", "drop", n, 50) == decide(9, "http", "err5xx", n, 50) {
			same++
		}
	}
	if same < 400 || same > 600 {
		t.Errorf("drop and err5xx decisions agree %d/1000 times; want ~500 (independent)", same)
	}
}

func TestPlanValidateAndLoad(t *testing.T) {
	bad := &Plan{HTTP: &HTTPFaults{DropPct: 150}}
	if err := bad.Validate(); err == nil {
		t.Error("drop_pct=150 must be rejected")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed": 7, "http": {"drop_pct": 30}, "journal": {"sync_err_at": [2]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.HTTP.DropPct != 30 || len(p.Journal.SyncErrAt) != 1 {
		t.Errorf("loaded plan %+v lost fields", p)
	}
	if err := os.WriteFile(path, []byte(`{"http": {"drop_pct": -1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(path); err == nil {
		t.Error("invalid plan file must fail to load")
	}
}

// TestTransportFaults drives each HTTP fault kind through a real server.
func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("payload-", 16))
	}))
	defer srv.Close()

	get := func(rt http.RoundTripper) (*http.Response, error) {
		c := &http.Client{Transport: rt}
		return c.Get(srv.URL)
	}

	t.Run("drop", func(t *testing.T) {
		var kinds []string
		rt := NewTransport(nil, &Plan{HTTP: &HTTPFaults{DropPct: 100}}, func(k string) { kinds = append(kinds, k) })
		if _, err := get(rt); !errors.Is(err, ErrInjectedDrop) {
			t.Fatalf("err = %v, want ErrInjectedDrop", err)
		}
		if len(kinds) != 1 || kinds[0] != "drop" {
			t.Errorf("observer saw %v, want [drop]", kinds)
		}
	})

	t.Run("err5xx", func(t *testing.T) {
		rt := NewTransport(nil, &Plan{HTTP: &HTTPFaults{Err5xxPct: 100}}, nil)
		resp, err := get(rt)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		rt := NewTransport(nil, &Plan{HTTP: &HTTPFaults{CorruptAt: []int64{1}}}, nil)
		resp, err := get(rt)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		want := strings.Repeat("payload-", 16)
		if string(body) == want {
			t.Error("body came back uncorrupted")
		}
		if len(body) != len(want) {
			t.Errorf("corruption changed the length: %d != %d", len(body), len(want))
		}
	})

	t.Run("truncate", func(t *testing.T) {
		rt := NewTransport(nil, &Plan{HTTP: &HTTPFaults{TruncateAt: []int64{1}}}, nil)
		resp, err := get(rt)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("read err = %v, want ErrUnexpectedEOF", err)
		}
		if len(body) >= len(strings.Repeat("payload-", 16)) {
			t.Error("body not truncated")
		}
	})

	t.Run("latency-and-slow-body", func(t *testing.T) {
		rt := NewTransport(nil, &Plan{HTTP: &HTTPFaults{
			LatencyPct: 100, LatencyMS: 30, SlowBodyPct: 100, SlowBodyMS: 1,
		}}, nil)
		start := time.Now()
		resp, err := get(rt)
		if err != nil {
			t.Fatal(err)
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			t.Fatal(rerr)
		}
		if string(body) != strings.Repeat("payload-", 16) {
			t.Error("slow body altered the payload")
		}
		if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
			t.Errorf("latency injection took only %v", elapsed)
		}
	})

	t.Run("untouched-without-faults", func(t *testing.T) {
		rt := NewTransport(nil, &Plan{}, nil)
		if _, ok := rt.(*Transport); ok {
			t.Error("plan without HTTP faults must return the base transport unwrapped")
		}
	})
}

// TestFileFaults drives the journal-file faults against a real file.
func TestFileFaults(t *testing.T) {
	open := func(t *testing.T, plan *Plan, obs Observer) SyncFile {
		f, err := os.Create(filepath.Join(t.TempDir(), "journal.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		w := WrapFile(f, plan, obs)
		t.Cleanup(func() { w.Close() })
		return w
	}

	t.Run("enospc", func(t *testing.T) {
		var kinds []string
		w := open(t, &Plan{Journal: &FileFaults{WriteErrAt: []int64{2}}}, func(k string) { kinds = append(kinds, k) })
		if _, err := w.Write([]byte("first\n")); err != nil {
			t.Fatalf("write 1: %v", err)
		}
		if _, err := w.Write([]byte("second\n")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write 2 err = %v, want ENOSPC", err)
		}
		if _, err := w.Write([]byte("third\n")); err != nil {
			t.Fatalf("write 3 must recover: %v", err)
		}
		if len(kinds) != 1 || kinds[0] != "write-err" {
			t.Errorf("observer saw %v, want [write-err]", kinds)
		}
	})

	t.Run("short-write", func(t *testing.T) {
		w := open(t, &Plan{Journal: &FileFaults{ShortWriteAt: []int64{1}}}, nil)
		n, err := w.Write([]byte("0123456789"))
		if !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("err = %v, want ErrShortWrite", err)
		}
		if n != 5 {
			t.Errorf("short write reported %d bytes, want 5", n)
		}
	})

	t.Run("sync-err", func(t *testing.T) {
		w := open(t, &Plan{Journal: &FileFaults{SyncErrAt: []int64{1}}}, nil)
		if err := w.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync 1 err = %v, want EIO", err)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("sync 2 must recover: %v", err)
		}
	})

	t.Run("untouched-without-faults", func(t *testing.T) {
		f, err := os.Create(filepath.Join(t.TempDir(), "j"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if w := WrapFile(f, &Plan{}, nil); w != SyncFile(f) {
			t.Error("plan without journal faults must return the file unwrapped")
		}
	})
}
