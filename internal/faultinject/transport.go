package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrInjectedDrop is the connection-level failure Transport returns for a
// dropped request; it is an ordinary transport error to the caller, so
// retry/breaker machinery exercises exactly the code paths a real
// connection reset would.
var ErrInjectedDrop = errors.New("faultinject: connection dropped")

// Observer receives one callback per injected fault, keyed by kind
// ("drop", "latency", "err5xx", "corrupt", "truncate", "slow-body",
// "write-err", "short-write", "sync-err"). Nil observers are fine.
type Observer func(kind string)

func (o Observer) note(kind string) {
	if o != nil {
		o(kind)
	}
}

// Transport wraps an http.RoundTripper with the plan's HTTP faults.
// Safe for concurrent use; each request takes the next ordinal.
type Transport struct {
	base    http.RoundTripper
	faults  *HTTPFaults
	seed    int64
	observe Observer
	n       atomic.Int64
}

// NewTransport wraps base (nil = http.DefaultTransport) with the plan's
// HTTP faults. A plan without HTTP faults returns base untouched.
func NewTransport(base http.RoundTripper, plan *Plan, observe Observer) http.RoundTripper {
	if plan == nil || plan.HTTP == nil {
		if base == nil {
			return http.DefaultTransport
		}
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, faults: plan.HTTP, seed: plan.Seed, observe: observe}
}

// Requests reports how many requests have passed through (the ordinal
// counter), for tests that want to pin a fault to a specific call.
func (t *Transport) Requests() int64 { return t.n.Load() }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.n.Add(1)
	f := t.faults
	if decide(t.seed, "http", "latency", n, f.LatencyPct) && f.LatencyMS > 0 {
		t.observe.note("latency")
		select {
		case <-time.After(time.Duration(f.LatencyMS) * time.Millisecond):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if decide(t.seed, "http", "drop", n, f.DropPct) {
		t.observe.note("drop")
		return nil, ErrInjectedDrop
	}
	if decide(t.seed, "http", "err5xx", n, f.Err5xxPct) {
		t.observe.note("err5xx")
		return synthetic503(req), nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch {
	case at(f.CorruptAt, n):
		t.observe.note("corrupt")
		return corruptBody(resp)
	case at(f.TruncateAt, n):
		t.observe.note("truncate")
		return truncateBody(resp)
	case decide(t.seed, "http", "slow-body", n, f.SlowBodyPct) && f.SlowBodyMS > 0:
		t.observe.note("slow-body")
		resp.Body = &slowBody{rc: resp.Body, pause: time.Duration(f.SlowBodyMS) * time.Millisecond, ctx: req.Context()}
		return resp, nil
	}
	return resp, nil
}

func synthetic503(req *http.Request) *http.Response {
	body := []byte("faultinject: synthetic 503\n")
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain"}},
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// corruptBody flips bytes spread through the response body, preserving
// its length — the framing survives, the payload does not parse (or
// worse, parses into garbage the caller must reject).
func corruptBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(data); i += 17 {
		data[i] ^= 0x5a
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	resp.Header.Set("Content-Length", strconv.Itoa(len(data)))
	return resp, nil
}

// truncateBody cuts the response body in half mid-stream: the reader gets
// an io.ErrUnexpectedEOF after half the declared length, like a peer that
// died mid-send.
func truncateBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(io.MultiReader(bytes.NewReader(data[:len(data)/2]), errReader{io.ErrUnexpectedEOF}))
	return resp, nil
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

// slowBody dribbles reads in small chunks with a pause between them.
type slowBody struct {
	rc    io.ReadCloser
	pause time.Duration
	ctx   interface{ Done() <-chan struct{} }
}

const slowChunk = 512

func (s *slowBody) Read(p []byte) (int, error) {
	if len(p) > slowChunk {
		p = p[:slowChunk]
	}
	select {
	case <-time.After(s.pause):
	case <-s.ctx.Done():
		return 0, errors.New("faultinject: slow body read cancelled")
	}
	return s.rc.Read(p)
}

func (s *slowBody) Close() error { return s.rc.Close() }
