package faultinject

import (
	"io"
	"sync/atomic"
	"syscall"
)

// SyncFile is the slice of *os.File the journal needs; File wraps any
// implementation with the plan's journal faults.
type SyncFile interface {
	io.WriteCloser
	Sync() error
	Name() string
}

// File injects write/fsync faults in front of a SyncFile. Ordinals are
// per-wrapper and survive journal rotation only if the same wrapper is
// reused; the journal wraps each physical file as it opens it, so plans
// address ordinals within one journal generation.
type File struct {
	f       SyncFile
	faults  *FileFaults
	seed    int64
	observe Observer
	writes  atomic.Int64
	syncs   atomic.Int64
}

// WrapFile wraps f with the plan's journal faults; a plan without them
// returns f untouched.
func WrapFile(f SyncFile, plan *Plan, observe Observer) SyncFile {
	if plan == nil || plan.Journal == nil {
		return f
	}
	return &File{f: f, faults: plan.Journal, seed: plan.Seed, observe: observe}
}

// Write implements io.Writer with injected ENOSPC and short writes.
func (w *File) Write(p []byte) (int, error) {
	n := w.writes.Add(1)
	switch {
	case at(w.faults.WriteErrAt, n) || decide(w.seed, "journal", "write-err", n, w.faults.WriteErrPct):
		w.observe.note("write-err")
		return 0, syscall.ENOSPC
	case at(w.faults.ShortWriteAt, n):
		w.observe.note("short-write")
		wrote, err := w.f.Write(p[:len(p)/2])
		if err != nil {
			return wrote, err
		}
		return wrote, io.ErrShortWrite
	}
	return w.f.Write(p)
}

// Sync implements fsync with injected EIO.
func (w *File) Sync() error {
	n := w.syncs.Add(1)
	if at(w.faults.SyncErrAt, n) {
		w.observe.note("sync-err")
		return syscall.EIO
	}
	return w.f.Sync()
}

// Close and Name delegate untouched.
func (w *File) Close() error { return w.f.Close() }
func (w *File) Name() string { return w.f.Name() }
