// Package faultinject is a deterministic fault-injection harness for the
// service's two durability-critical boundaries: the HTTP transport that
// carries shard legs between peer daemons, and the file the write-ahead
// journal appends to. A Plan — committed JSON, loadable from a file — is
// applied as wrappers (an http.RoundTripper and a journal-file shim) that
// decide per call whether to misbehave.
//
// Decisions are *schedule-deterministic*: each wrapper numbers its calls
// with an atomic ordinal, and whether call n suffers a fault is a pure
// hash of (seed, boundary, fault kind, n). Re-running the same schedule —
// the same ordinal assignment — replays exactly the same faults, which is
// what makes a red chaos run reproducible from its committed plan; under
// concurrency the ordinal assignment itself can vary with interleaving,
// so the guarantee is per-schedule, not per-wall-clock. Nothing here
// consults math/rand at decision time.
//
// The package is stdlib-only and imported from tests and from the
// dev-only `hmcd -chaos-plan FILE` flag; production builds without the
// flag never construct a wrapper.
package faultinject

import (
	"encoding/json"
	"fmt"
	"os"
)

// Plan is a complete fault schedule: one seed plus per-boundary specs.
// A nil boundary spec leaves that boundary untouched.
type Plan struct {
	// Seed drives every percentage decision; two plans with the same
	// faults but different seeds fault different ordinals.
	Seed int64 `json:"seed"`
	// HTTP faults apply to the peer transport (see Transport).
	HTTP *HTTPFaults `json:"http,omitempty"`
	// Journal faults apply to journal file writes/fsyncs (see File).
	Journal *FileFaults `json:"journal,omitempty"`
}

// HTTPFaults describes transport-boundary misbehavior. Percentages are
// evaluated per request ordinal; *At lists name exact 1-based ordinals.
type HTTPFaults struct {
	// DropPct fails this percentage of requests with a connection error
	// before any bytes reach the peer.
	DropPct int `json:"drop_pct,omitempty"`
	// LatencyPct delays this percentage of requests by LatencyMS before
	// dispatch (a latency spike, not a drop).
	LatencyPct int   `json:"latency_pct,omitempty"`
	LatencyMS  int64 `json:"latency_ms,omitempty"`
	// Err5xxPct answers this percentage of requests with a synthetic
	// 503 instead of contacting the peer.
	Err5xxPct int `json:"err_5xx_pct,omitempty"`
	// CorruptAt corrupts the response body of these request ordinals
	// (bytes flipped; length preserved, so framing still parses).
	CorruptAt []int64 `json:"corrupt_at,omitempty"`
	// TruncateAt cuts the response body of these ordinals in half.
	TruncateAt []int64 `json:"truncate_at,omitempty"`
	// SlowBodyPct dribbles the response body of this percentage of
	// requests in small chunks with SlowBodyMS pauses between them — a
	// slow-loris read on the client side.
	SlowBodyPct int   `json:"slow_body_pct,omitempty"`
	SlowBodyMS  int64 `json:"slow_body_ms,omitempty"`
}

// FileFaults describes journal-file misbehavior by operation ordinal.
type FileFaults struct {
	// WriteErrAt fails these write ordinals with ENOSPC, writing nothing.
	WriteErrAt []int64 `json:"write_err_at,omitempty"`
	// ShortWriteAt writes only the first half of these write ordinals,
	// then reports io.ErrShortWrite — a torn append.
	ShortWriteAt []int64 `json:"short_write_at,omitempty"`
	// SyncErrAt fails these fsync ordinals with EIO.
	SyncErrAt []int64 `json:"sync_err_at,omitempty"`
	// WriteErrPct fails this percentage of writes with ENOSPC.
	WriteErrPct int `json:"write_err_pct,omitempty"`
}

// Validate rejects plans whose numbers cannot mean anything.
func (p *Plan) Validate() error {
	check := func(name string, pct int) error {
		if pct < 0 || pct > 100 {
			return fmt.Errorf("faultinject: %s = %d%% out of [0, 100]", name, pct)
		}
		return nil
	}
	if h := p.HTTP; h != nil {
		for _, c := range []struct {
			name string
			pct  int
		}{
			{"http.drop_pct", h.DropPct},
			{"http.latency_pct", h.LatencyPct},
			{"http.err_5xx_pct", h.Err5xxPct},
			{"http.slow_body_pct", h.SlowBodyPct},
		} {
			if err := check(c.name, c.pct); err != nil {
				return err
			}
		}
	}
	if j := p.Journal; j != nil {
		if err := check("journal.write_err_pct", j.WriteErrPct); err != nil {
			return err
		}
	}
	return nil
}

// LoadPlan reads and validates a JSON fault plan from path.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultinject: %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("faultinject: %s: %w", path, err)
	}
	return &p, nil
}

// decide reports whether ordinal n of the named fault fires at pct
// percent — a pure function of its arguments, so the same schedule
// replays the same faults.
func decide(seed int64, boundary, kind string, n int64, pct int) bool {
	if pct <= 0 {
		return false
	}
	if pct >= 100 {
		return true
	}
	return mix(seed, boundary, kind, n)%100 < uint64(pct)
}

// mix is an FNV-1a fold of the decision coordinates through a splitmix64
// finalizer — cheap, stdlib-free, and well distributed in the low bits.
func mix(seed int64, boundary, kind string, n int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	fold(uint64(seed))
	for _, s := range []string{boundary, kind} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
		h *= prime64
	}
	fold(uint64(n))
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// at reports whether n is listed.
func at(list []int64, n int64) bool {
	for _, v := range list {
		if v == n {
			return true
		}
	}
	return false
}
