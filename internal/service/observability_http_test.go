package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"hmc/internal/service"
)

// manyWritesSource is a same-location store storm: 11 writes across three
// threads, 11!/(4!·4!·3!) = 11550 interleavings under sc — big enough that
// exploration spans many progress cadences, small enough to finish.
func manyWritesSource() string {
	return "name many-writes\n" +
		"T0: W x 1 ; W x 2 ; W x 3 ; W x 4\n" +
		"T1: W x 11 ; W x 12 ; W x 13 ; W x 14\n" +
		"T2: W x 21 ; W x 22 ; W x 23\n" +
		"exists x=4\n"
}

// wireProgress mirrors the /v1/jobs/{id}/progress payload.
type wireProgress struct {
	ID       string        `json:"id"`
	State    string        `json:"state"`
	Progress *wireSnapshot `json:"progress"`
	Job      *wireJob      `json:"job"`
}

type wireSnapshot struct {
	Seq               int     `json:"seq"`
	Wave              int     `json:"wave"`
	Executions        int     `json:"executions"`
	States            int     `json:"states"`
	ConsistencyChecks int     `json:"consistency_checks"`
	ElapsedNS         int64   `json:"elapsed_ns"`
	ExecsPerSec       float64 `json:"execs_per_sec"`
	Final             bool    `json:"final"`
}

// TestHTTPProgressLongPoll is the tentpole acceptance test at the service
// level: a client chaining GET /v1/jobs/{id}/progress?seq=N long-polls
// observes at least two distinct non-terminal snapshots of a live
// exploration, counters monotone, and a final snapshot whose counters
// equal the job's result.
func TestHTTPProgressLongPoll(t *testing.T) {
	_, ts := startServer(t, service.Config{Workers: 1, ProgressEvery: 3 * time.Millisecond})

	body, _ := json.Marshal(map[string]any{"source": manyWritesSource(), "model": "sc"})
	status, job := postJob(t, ts, string(body))
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}

	seq, nonFinal, lastExecs := 0, 0, 0
	var last *wireSnapshot
	deadline := time.Now().Add(90 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job never finished (last snapshot %+v)", last)
		}
		code, text := getBody(t, ts, fmt.Sprintf("/v1/jobs/%s/progress?seq=%d&wait=10s", job.ID, seq))
		if code != http.StatusOK {
			t.Fatalf("/progress status %d: %s", code, text)
		}
		var pr wireProgress
		if err := json.Unmarshal([]byte(text), &pr); err != nil {
			t.Fatalf("bad progress JSON: %v\n%s", err, text)
		}
		if pr.Progress != nil && pr.Progress.Seq > seq {
			if pr.Progress.Executions < lastExecs {
				t.Errorf("executions went backwards: %d after %d", pr.Progress.Executions, lastExecs)
			}
			lastExecs = pr.Progress.Executions
			seq = pr.Progress.Seq
			last = pr.Progress
			if !pr.Progress.Final {
				nonFinal++
			}
		}
		if pr.State == "done" || pr.State == "failed" || pr.State == "canceled" {
			if pr.State != "done" {
				t.Fatalf("job ended %s: %+v", pr.State, pr.Job)
			}
			if pr.Job == nil || pr.Job.Result == nil {
				t.Fatal("terminal progress response must embed the job record")
			}
			if last == nil || !last.Final {
				t.Fatalf("terminal response must carry the final snapshot, got %+v", last)
			}
			if last.Executions != pr.Job.Result.Executions {
				t.Errorf("final snapshot executions %d != result %d", last.Executions, pr.Job.Result.Executions)
			}
			break
		}
	}
	if nonFinal < 2 {
		t.Errorf("observed %d non-terminal snapshots, want >= 2 (cadence 3ms over 11550 executions)", nonFinal)
	}

	// The plain job poll also serves the (final) snapshot.
	code, text := getBody(t, ts, "/v1/jobs/"+job.ID)
	if code != http.StatusOK {
		t.Fatalf("job poll status %d", code)
	}
	var full struct {
		Progress *wireSnapshot `json:"progress"`
	}
	if err := json.Unmarshal([]byte(text), &full); err != nil {
		t.Fatal(err)
	}
	if full.Progress == nil || !full.Progress.Final {
		t.Errorf("GET /v1/jobs/{id} must serve the final snapshot, got %+v", full.Progress)
	}

	// The progress sink fed the histograms and phase counters.
	code, metrics := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if got := metricValue(t, metrics, "hmcd_job_exec_rate_count"); got != "1" {
		t.Errorf("hmcd_job_exec_rate_count = %s, want 1", got)
	}
	if got := metricValue(t, metrics, "hmcd_wave_size_count"); got == "0" {
		t.Error("hmcd_wave_size_count = 0, want > 0")
	}
	if !strings.Contains(metrics, "hmcd_phase_interp_seconds_total") ||
		!strings.Contains(metrics, "hmcd_consistency_check_seconds_bucket") {
		t.Error("phase counters or consistency-check histogram missing from /metrics")
	}
}

// TestHTTPProgressParamValidation: bad seq/wait are 400s, unknown jobs
// 404, and a terminal job answers immediately (no long-poll hang).
func TestHTTPProgressParamValidation(t *testing.T) {
	_, ts := startServer(t, service.Config{Workers: 1, ProgressEvery: time.Millisecond})

	if code, _ := getBody(t, ts, "/v1/jobs/nope/progress"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	status, job := postJob(t, ts, `{"test": "MP", "model": "sc"}`)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit status %d", status)
	}
	if code, _ := getBody(t, ts, "/v1/jobs/"+job.ID+"/progress?seq=abc"); code != http.StatusBadRequest {
		t.Errorf("bad seq: %d, want 400", code)
	}
	if code, _ := getBody(t, ts, "/v1/jobs/"+job.ID+"/progress?wait=never"); code != http.StatusBadRequest {
		t.Errorf("bad wait: %d, want 400", code)
	}
	pollJob(t, ts, job.ID)
	start := time.Now()
	code, text := getBody(t, ts, "/v1/jobs/"+job.ID+"/progress?seq=999999&wait=30s")
	if code != http.StatusOK {
		t.Fatalf("terminal progress poll status %d", code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("terminal job long-polled for %v, must answer immediately", elapsed)
	}
	var pr wireProgress
	if err := json.Unmarshal([]byte(text), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.State != "done" || pr.Job == nil {
		t.Errorf("terminal poll: state %s, job %v", pr.State, pr.Job)
	}
}
