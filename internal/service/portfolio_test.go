package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmc/internal/backend"
	"hmc/internal/litmus"
	"hmc/internal/prog"
)

// wrongBackend is an always-applicable alternate that confidently returns
// a fabricated exhaustive verdict, guaranteed to disagree with the DFS
// anchor on any real program.
type wrongBackend struct{ name string }

func (w *wrongBackend) Name() string                                 { return w.name }
func (w *wrongBackend) Applicable(*prog.Program, backend.Spec) error { return nil }
func (w *wrongBackend) Run(ctx context.Context, p *prog.Program, s backend.Spec) (*backend.Verdict, error) {
	keys := []string{"fabricated|outcome"}
	return &backend.Verdict{
		Backend:       w.name,
		Model:         s.Model,
		Outcomes:      keys,
		OutcomeDigest: backend.Digest(keys),
		Allowed:       false,
		Assertion:     backend.Pass,
		Exhaustive:    true,
	}, nil
}

// TestPortfolioDisagreementQuarantines is the injected-fault acceptance
// test: a lying backend must quarantine the job, write a replayable
// artifact, bump the disagreement metrics, keep the verdict out of the
// cache, and trip the per-fingerprint breaker.
func TestPortfolioDisagreementQuarantines(t *testing.T) {
	qdir := t.TempDir()
	s := mustNew(t, Config{
		Workers:          1,
		Portfolio:        true,
		QuarantineDir:    qdir,
		BreakerThreshold: 2,
	})
	defer s.Shutdown(context.Background())
	s.alternates = []backend.Backend{&wrongBackend{name: "liar"}}

	sb, _ := litmus.ByName("SB")
	v, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso", Test: "SB"})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateQuarantined {
		t.Fatalf("state %s, want quarantined (err %q)", v.State, v.Err)
	}
	if v.Err == "" || v.Result != nil {
		t.Fatalf("quarantined job must carry an error and no served result: %+v", v)
	}
	if len(v.Attestation) == 0 || v.Winner == nil {
		t.Errorf("attestation trail missing: %+v", v)
	}

	// The artifact exists, identifies itself, and replays to the program.
	if v.QuarantineArtifact == "" {
		t.Fatal("no quarantine artifact path on the job view")
	}
	if _, err := os.Stat(v.QuarantineArtifact); err != nil {
		t.Fatalf("artifact not on disk: %v", err)
	}
	if !IsQuarantineArtifact(v.QuarantineArtifact) {
		t.Error("IsQuarantineArtifact should recognize the file")
	}
	art, err := LoadQuarantineArtifact(v.QuarantineArtifact)
	if err != nil {
		t.Fatal(err)
	}
	if art.Winner == nil || art.Dissenter == nil || art.Diff == "" {
		t.Fatalf("artifact must carry both verdicts and the diff: %+v", art)
	}
	replay, err := art.BuildProgram()
	if err != nil {
		t.Fatalf("artifact not replayable: %v", err)
	}
	if replay.Fingerprint() != sb.P.Fingerprint() {
		t.Error("replayed program diverges from the submitted one")
	}

	m := s.Metrics()
	if m.BackendDisagreements.Load() == 0 {
		t.Error("hmcd_backend_disagreements_total not bumped")
	}
	if m.JobsQuarantined.Load() != 1 || m.QuarantineArtifacts.Load() != 1 {
		t.Errorf("quarantine counters = %d/%d, want 1/1",
			m.JobsQuarantined.Load(), m.QuarantineArtifacts.Load())
	}

	// NOT cached: an identical resubmission must miss the cache and run
	// (and quarantine) again rather than serve the poisoned verdict.
	second, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso", Test: "SB"})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHit {
		t.Fatal("disagreeing verdict was served from cache")
	}
	second = waitState(t, s, second.ID)
	if second.State != StateQuarantined {
		t.Fatalf("second run: state %s, want quarantined", second.State)
	}

	// Two disagreements reach BreakerThreshold: the fingerprint is now
	// circuit-broken.
	if _, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso", Test: "SB"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker should reject the third submission, got %v", err)
	}

	// Artifact eviction cap respected: both artifacts fit under the default.
	files, _ := filepath.Glob(filepath.Join(qdir, quarantineKind+"-*.json"))
	if len(files) != 2 {
		t.Errorf("want 2 artifacts on disk, got %d", len(files))
	}
}

// TestPortfolioAgreementServesAnchorResult: with the real alternates, the
// portfolio path must serve a result identical to the legacy single-engine
// path, cache it, and attach the attestation trail.
func TestPortfolioAgreementServesAnchorResult(t *testing.T) {
	legacy := mustNew(t, Config{Workers: 1})
	defer legacy.Shutdown(context.Background())
	port := mustNew(t, Config{Workers: 1, Portfolio: true, QuarantineDir: t.TempDir()})
	defer port.Shutdown(context.Background())

	sb, _ := litmus.ByName("SB")
	want, err := legacy.Submit(SubmitRequest{Program: sb.P, Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}
	want = waitState(t, legacy, want.ID)

	got, err := port.Submit(SubmitRequest{Program: sb.P, Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}
	got = waitState(t, port, got.ID)
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("state %s (err %q)", got.State, got.Err)
	}
	if got.Result.Executions != want.Result.Executions ||
		got.Result.ExistsCount != want.Result.ExistsCount ||
		got.Result.Blocked != want.Result.Blocked {
		t.Errorf("portfolio result %+v diverges from legacy %+v", got.Result, want.Result)
	}
	if len(got.Attestation) == 0 {
		t.Error("portfolio job has no attestation trail")
	}
	if got.Winner == nil || got.Winner.OutcomeDigest == "" {
		t.Errorf("winner verdict missing: %+v", got.Winner)
	}
	if got.QuarantineArtifact != "" {
		t.Errorf("agreement must not quarantine: %s", got.QuarantineArtifact)
	}
	if port.Metrics().BackendRuns.Load() == 0 || port.Metrics().BackendWins.Load() == 0 {
		t.Error("backend run/win counters not bumped")
	}

	// Agreement IS cacheable.
	again, err := port.Submit(SubmitRequest{Program: sb.P, Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("agreed verdict should be served from cache")
	}
}

// TestPortfolioShardedJobsUseLegacyPath: sharded jobs bypass the portfolio
// (merged shard legs are the anchor's own cross-check).
func TestPortfolioShardedJobsUseLegacyPath(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Portfolio: true, QuarantineDir: t.TempDir()})
	defer s.Shutdown(context.Background())
	// Even with a lying alternate, a sharded job must not consult it.
	s.alternates = []backend.Backend{&wrongBackend{name: "liar"}}

	sb, _ := litmus.ByName("SB")
	v, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateDone {
		t.Fatalf("state %s, want done (err %q)", v.State, v.Err)
	}
	if len(v.Attestation) != 0 || v.Winner != nil {
		t.Errorf("sharded job must not carry portfolio attestation: %+v", v)
	}
}

// TestQuarantineMetricsRendered: the new counters and the per-backend
// latency histogram family appear on the Prometheus surface.
func TestQuarantineMetricsRendered(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, Portfolio: true, QuarantineDir: t.TempDir()})
	defer s.Shutdown(context.Background())

	sb, _ := litmus.ByName("SB")
	v, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID)

	var b strings.Builder
	s.Metrics().writePrometheus(&b, 0, 0, 0, 0, true, nil)
	text := b.String()
	for _, want := range []string{
		"hmcd_backend_runs_total",
		"hmcd_backend_wins_total",
		"hmcd_backend_timeouts_total",
		"hmcd_backend_disagreements_total",
		"hmcd_jobs_quarantined_total",
		"hmcd_quarantine_artifacts_total",
		`hmcd_backend_latency_seconds_bucket{backend="dfs"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
