package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"hmc/internal/core"
)

// verdictCache is a content-addressed LRU cache of exhaustive exploration
// results. Keys are built by cacheKey from the program fingerprint, the
// model name and every option that can change the verdict or the counts
// (bounds, ablations, symmetry) — but not Workers, which only changes how
// fast the same result is computed. Values are *core.Result pointers;
// results are immutable once a job completes, so entries are shared, not
// copied. Only exhaustive results are inserted (an interrupted run's
// partial counts depend on the deadline that cut it, not on the program).
type verdictCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	// evictions, when wired (New points it at Metrics.CacheEvictions),
	// counts entries dropped by LRU pressure — the signal that CacheSize is
	// too small for the working set. Nil-safe for standalone caches.
	evictions *atomic.Int64
}

type cacheEntry struct {
	key string
	res *core.Result
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached result for key, promoting it to most recent.
func (c *verdictCache) get(key string) (*core.Result, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts (or refreshes) key, evicting the least recently used entry
// when the cache is full.
func (c *verdictCache) put(key string, res *core.Result) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		if c.evictions != nil {
			c.evictions.Add(1)
		}
	}
}

// capacity reports the configured entry bound (0 when caching is off).
func (c *verdictCache) capacity() int {
	if c == nil || c.cap < 0 {
		return 0
	}
	return c.cap
}

// len reports the number of cached entries.
func (c *verdictCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// snapshot returns the entries least-recently-used first, so reinserting
// them in order reproduces the LRU ordering (persistence round trip).
func (c *verdictCache) snapshot() []cacheEntry {
	if c == nil || c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}
