package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hmc/internal/core"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/prog"
)

// corruptProgram builds a valid-looking program whose second thread hits an
// unknown instruction opcode mid-exploration — Validate passes (it only
// checks branch targets and register bounds) but the interpreter panics.
// The nonce lands in a store constant so each call yields a distinct
// fingerprint.
func corruptProgram(t *testing.T, nonce int64) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("corrupted")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(nonce))
	t1 := b.Thread()
	t1.Load(x)
	t1.Store(x, prog.Const(2))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.Threads[1][1].Op = prog.InstrOp(200)
	return p
}

// TestEngineCrashIsolated is the acceptance test for fault containment: a
// job whose program crashes the engine fails alone — with structured
// diagnostics and a replayable crash artifact — while a concurrent healthy
// job on the same service completes normally.
func TestEngineCrashIsolated(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Config{Workers: 2, CrashDir: dir})
	defer s.Shutdown(context.Background())

	bad := corruptProgram(t, 1)
	mp, _ := litmus.ByName("MP")

	badView, err := s.Submit(SubmitRequest{Program: bad, Model: "tso", Test: "MP"})
	if err != nil {
		t.Fatal(err)
	}
	goodView, err := s.Submit(SubmitRequest{Program: mp.P, Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}

	good := waitState(t, s, goodView.ID)
	if good.State != StateDone || good.Result == nil {
		t.Fatalf("healthy job must complete despite a concurrent crash: %+v", good)
	}

	failed := waitState(t, s, badView.ID)
	if failed.State != StateFailed {
		t.Fatalf("corrupted job state = %s, want failed", failed.State)
	}
	ee := failed.EngineError
	if ee == nil {
		t.Fatalf("failed job carries no EngineError (err %q)", failed.Err)
	}
	if ee.Fingerprint != bad.Fingerprint() || ee.Model != "tso" || ee.PanicValue == nil {
		t.Errorf("EngineError diagnostics incomplete: %+v", ee)
	}
	if !strings.Contains(ee.Stack, "interp") {
		t.Errorf("stack does not reach the interpreter:\n%s", ee.Stack)
	}

	// Exactly one artifact, loadable, pointing back at the crash.
	if failed.CrashArtifact == "" {
		t.Fatal("failed job has no crash artifact path")
	}
	files, err := filepath.Glob(filepath.Join(dir, "crash-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("crash dir has %d artifacts (err %v), want exactly 1", len(files), err)
	}
	art, err := LoadCrashArtifact(failed.CrashArtifact)
	if err != nil {
		t.Fatal(err)
	}
	if art.JobID != failed.ID || art.Fingerprint != bad.Fingerprint() || art.Model != "tso" {
		t.Errorf("artifact does not describe the crashed job: %+v", art)
	}
	if art.Test != "MP" {
		t.Errorf("artifact lost the submission's Test name: %q", art.Test)
	}
	if _, err := art.BuildProgram(); err != nil {
		t.Errorf("artifact with a Test name must be replayable: %v", err)
	}

	m := s.Metrics()
	if m.JobsFailed.Load() != 1 || m.EngineErrors.Load() != 1 || m.CrashArtifacts.Load() != 1 {
		t.Errorf("metrics failed/engine/artifacts = %d/%d/%d, want 1/1/1",
			m.JobsFailed.Load(), m.EngineErrors.Load(), m.CrashArtifacts.Load())
	}
}

func TestEngineErrorNeverCached(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CrashDir: t.TempDir(), BreakerThreshold: -1})
	defer s.Shutdown(context.Background())

	bad := corruptProgram(t, 2)
	first, err := s.Submit(SubmitRequest{Program: bad, Model: "sc"})
	if err != nil {
		t.Fatal(err)
	}
	if waitState(t, s, first.ID).State != StateFailed {
		t.Fatal("corrupted job must fail")
	}
	second, err := s.Submit(SubmitRequest{Program: bad, Model: "sc"})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHit {
		t.Fatal("a crashed job must never seed the verdict cache")
	}
	waitState(t, s, second.ID)
}

func TestCrashDirBounded(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Config{Workers: 1, CrashDir: dir, MaxCrashArtifacts: 3, BreakerThreshold: -1})
	defer s.Shutdown(context.Background())

	for i := int64(0); i < 6; i++ {
		v, err := s.Submit(SubmitRequest{Program: corruptProgram(t, 10+i), Model: "sc"})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, v.ID)
	}
	files, err := filepath.Glob(filepath.Join(dir, "crash-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("crash dir holds %d artifacts after 6 crashes, want 3 (oldest evicted)", len(files))
	}
	if got := s.CrashArtifacts(); got != 3 {
		t.Errorf("CrashArtifacts() = %d, want 3", got)
	}
	if total := s.Metrics().CrashArtifacts.Load(); total != 6 {
		t.Errorf("hmcd_crash_artifacts_total = %d, want 6 (counter counts writes, not residents)", total)
	}
}

func TestCrashCaptureDisabled(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CrashDir: t.TempDir(), MaxCrashArtifacts: -1})
	defer s.Shutdown(context.Background())

	v, err := s.Submit(SubmitRequest{Program: corruptProgram(t, 3), Model: "sc"})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateFailed || v.EngineError == nil {
		t.Fatalf("job must still fail with diagnostics: %+v", v)
	}
	if v.CrashArtifact != "" {
		t.Errorf("capture disabled but artifact written: %s", v.CrashArtifact)
	}
}

func TestCircuitBreaker(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CrashDir: t.TempDir(), BreakerThreshold: 2})
	defer s.Shutdown(context.Background())

	bad := corruptProgram(t, 4)
	for i := 0; i < 2; i++ {
		v, err := s.Submit(SubmitRequest{Program: bad, Model: "sc"})
		if err != nil {
			t.Fatalf("submit %d before the breaker trips: %v", i, err)
		}
		waitState(t, s, v.ID)
	}
	if _, err := s.Submit(SubmitRequest{Program: bad, Model: "sc"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("third submission of a twice-crashed program: err = %v, want ErrCircuitOpen", err)
	}
	// The breaker is per-fingerprint: other programs sail through.
	other := corruptProgram(t, 5)
	v, err := s.Submit(SubmitRequest{Program: other, Model: "sc"})
	if err != nil {
		t.Fatalf("distinct fingerprint must not be rejected: %v", err)
	}
	waitState(t, s, v.ID)
	mp, _ := litmus.ByName("MP")
	if _, err := s.Submit(SubmitRequest{Program: mp.P, Model: "sc"}); err != nil {
		t.Fatalf("healthy program must not be rejected: %v", err)
	}
	if got := s.Metrics().BreakerRejected.Load(); got != 1 {
		t.Errorf("hmcd_breaker_rejected_total = %d, want 1", got)
	}
}

func TestBreakerCooldownResets(t *testing.T) {
	b := newBreaker(2, 10*time.Millisecond)
	now := time.Now()
	b.record("fp", now)
	b.record("fp", now)
	if b.allow("fp", now) {
		t.Fatal("breaker must be open after threshold crashes")
	}
	if !b.allow("fp", now.Add(11*time.Millisecond)) {
		t.Fatal("breaker must reset after cooldown")
	}
}

// TestBreakerHalfOpenCloses walks the half-open happy path: open →
// cooldown → exactly one probe admitted → clean run → closed, with the
// crash history forgotten.
func TestBreakerHalfOpenCloses(t *testing.T) {
	b := newBreaker(2, 10*time.Millisecond)
	now := time.Now()
	b.record("fp", now)
	b.record("fp", now)
	if b.allow("fp", now) {
		t.Fatal("breaker must be open after threshold crashes")
	}
	probeAt := now.Add(11 * time.Millisecond)
	if !b.allow("fp", probeAt) {
		t.Fatal("past cooldown the breaker must admit a half-open probe")
	}
	if b.allow("fp", probeAt) {
		t.Fatal("only one probe may be in flight; the second submission must wait")
	}
	b.succeed("fp")
	if !b.allow("fp", probeAt) {
		t.Fatal("a clean probe must close the breaker")
	}
	// The history is gone too: one fresh crash is below threshold.
	b.record("fp", probeAt)
	if !b.allow("fp", probeAt) {
		t.Fatal("a closed breaker starts its crash count from zero")
	}
}

// TestBreakerHalfOpenReopens: a crash during the half-open probe reopens
// the breaker for a full fresh cooldown before the next probe.
func TestBreakerHalfOpenReopens(t *testing.T) {
	b := newBreaker(2, 10*time.Millisecond)
	now := time.Now()
	b.record("fp", now)
	b.record("fp", now)
	probeAt := now.Add(11 * time.Millisecond)
	if !b.allow("fp", probeAt) {
		t.Fatal("past cooldown the breaker must admit a half-open probe")
	}
	b.record("fp", probeAt) // the probe crashed
	if b.allow("fp", probeAt.Add(5*time.Millisecond)) {
		t.Fatal("a failed probe must reopen the breaker for a fresh cooldown")
	}
	if !b.allow("fp", probeAt.Add(11*time.Millisecond)) {
		t.Fatal("after the fresh cooldown the breaker must probe again")
	}
}

// TestBreakerStuckProbeExpires: a probe whose verdict never arrives (the
// job was canceled, or evicted from history) must not wedge the
// fingerprint shut — after a further cooldown a new probe is admitted.
func TestBreakerStuckProbeExpires(t *testing.T) {
	b := newBreaker(2, 10*time.Millisecond)
	now := time.Now()
	b.record("fp", now)
	b.record("fp", now)
	probeAt := now.Add(11 * time.Millisecond)
	if !b.allow("fp", probeAt) {
		t.Fatal("past cooldown the breaker must admit a half-open probe")
	}
	// The probe's verdict never lands. A further cooldown later, a new
	// probe goes out instead of rejecting forever.
	if b.allow("fp", probeAt.Add(5*time.Millisecond)) {
		t.Fatal("while the probe is fresh, further submissions must wait")
	}
	if !b.allow("fp", probeAt.Add(11*time.Millisecond)) {
		t.Fatal("a probe that never reported must expire after a cooldown")
	}
}

func TestMemoryBudgetRetries(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CrashDir: t.TempDir(), MaxAttempts: 3, RetryBackoff: time.Millisecond})
	defer s.Shutdown(context.Background())

	p := gen.SBN(4)
	v, err := s.Submit(SubmitRequest{Program: p, Model: "sc", MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("memory-truncated job must still complete: %+v", v)
	}
	if !v.Result.Truncated || v.Result.TruncatedReason != core.TruncMemoryBudget {
		t.Fatalf("result not memory-truncated: truncated=%v reason=%q",
			v.Result.Truncated, v.Result.TruncatedReason)
	}
	if v.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (all retries burned)", v.Attempts)
	}
	if got := s.Metrics().JobsRetried.Load(); got != 2 {
		t.Errorf("hmcd_jobs_retried_total = %d, want 2", got)
	}
	// Transient truncation must not be cached: a resubmission runs again.
	again, err := s.Submit(SubmitRequest{Program: p, Model: "sc", MemoryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("memory-budget-truncated results must never be cached")
	}
	waitState(t, s, again.ID)
}

func TestDeterministicTruncationNotRetried(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CrashDir: t.TempDir(), MaxAttempts: 3, RetryBackoff: time.Millisecond})
	defer s.Shutdown(context.Background())

	v, err := s.Submit(SubmitRequest{Program: gen.SBN(4), Model: "sc", MaxExecutions: 2})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateDone {
		t.Fatalf("bounded job must complete: %+v", v)
	}
	if v.Result.TruncatedReason != core.TruncMaxExecutions {
		t.Fatalf("reason = %q, want %q", v.Result.TruncatedReason, core.TruncMaxExecutions)
	}
	if v.Attempts != 1 {
		t.Errorf("attempts = %d; deterministic truncation must not retry", v.Attempts)
	}
	if s.Metrics().JobsRetried.Load() != 0 {
		t.Error("deterministic truncation bumped the retry counter")
	}
}

// TestFailureHTTPPayload checks the wire format: a crashed job's JSON
// exposes attempts, the structured engine error (with a bounded stack) and
// the crash-artifact path.
func TestFailureHTTPPayload(t *testing.T) {
	dir := t.TempDir()
	s := mustNew(t, Config{Workers: 1, CrashDir: dir})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, err := s.Submit(SubmitRequest{Program: corruptProgram(t, 6), Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var wire struct {
		State         string `json:"state"`
		Attempts      int    `json:"attempts"`
		CrashArtifact string `json:"crash_artifact"`
		EngineError   *struct {
			Op          string `json:"op"`
			Panic       string `json:"panic"`
			Fingerprint string `json:"fingerprint"`
			Model       string `json:"model"`
			Stack       string `json:"stack"`
		} `json:"engine_error"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
	if wire.State != "failed" || wire.EngineError == nil {
		t.Fatalf("wire payload missing failure diagnostics:\n%s", raw)
	}
	if wire.EngineError.Op != "explore" || wire.EngineError.Model != "tso" ||
		wire.EngineError.Panic == "" || wire.EngineError.Fingerprint == "" {
		t.Errorf("engine_error fields incomplete:\n%s", raw)
	}
	if len(wire.EngineError.Stack) > 4096+len("\n[stack truncated; see crash artifact]") {
		t.Errorf("wire stack unbounded: %d bytes", len(wire.EngineError.Stack))
	}
	if wire.Attempts < 1 || wire.CrashArtifact == "" {
		t.Errorf("attempts/crash_artifact missing:\n%s", raw)
	}
	if _, err := os.Stat(wire.CrashArtifact); err != nil {
		t.Errorf("advertised artifact not on disk: %v", err)
	}

	// /metrics exposes the failure counters.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mraw, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"hmcd_engine_errors_total 1",
		"hmcd_crash_artifacts_total 1",
		"hmcd_crash_artifacts_resident 1",
	} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mraw)
		}
	}
}

// TestWorkerPanicSecondLine drives the worker-loop recover directly: a
// hand-built job with a nil program (Submit rejects these, so only a
// service bug could produce one) panics inside runJob before the engine's
// own boundary is installed. The worker must survive and finalize the job
// as failed rather than crash the process.
func TestWorkerPanicSecondLine(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CrashDir: t.TempDir()})
	defer s.Shutdown(context.Background())

	j := &Job{
		id:    "boom",
		state: StateQueued,
		req:   SubmitRequest{Program: nil, Model: "sc"},
		model: mustModel(t, "sc"),
	}
	s.mu.Lock()
	s.jobs["boom"] = j
	s.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("safeRunJob let a panic escape: %v", r)
			}
		}()
		s.safeRunJob(j)
	}()
	s.mu.Lock()
	st, errMsg := j.state, j.errMsg
	s.mu.Unlock()
	if st != StateFailed || !strings.Contains(errMsg, "worker panic") {
		t.Errorf("second-line recover did not finalize the job: state=%s err=%q", st, errMsg)
	}
}
