package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hmc/internal/core"
)

// Verdict-cache persistence: the content-addressed verdict cache is
// written to verdicts.json in the journal directory whenever a new
// verdict lands and on shutdown, and loaded on startup — a restarted
// daemon answers repeat submissions from cache instead of re-exploring.
// The file is keyed by the engine schema version; after an engine upgrade
// every entry is dropped on load (a verdict computed under different
// exploration semantics must never be served as current).

const verdictFile = "verdicts.json"

// storedVerdict is one persisted cache entry. The live Result's error
// witnesses hold unexported graph state, so they travel through the same
// wire codec as checkpoints.
type storedVerdict struct {
	Key             string           `json:"key"`
	Stats           core.Stats       `json:"stats"`
	Errors          []core.WireError `json:"errors,omitempty"`
	Truncated       bool             `json:"truncated,omitempty"`
	TruncatedReason string           `json:"reason,omitempty"`
}

// verdictFileJSON is the on-disk shape.
type verdictFileJSON struct {
	Schema   int             `json:"schema"`
	Verdicts []storedVerdict `json:"verdicts"`
}

// loadVerdicts reads dir/verdicts.json into the cache. A missing file is
// a fresh start; a corrupt file or one from another engine schema is
// dropped wholesale (the cache is a performance layer — stale or
// undecodable entries are discarded, never guessed at). Returns the
// number of entries restored.
func loadVerdicts(dir string, cache *verdictCache) int {
	data, err := os.ReadFile(filepath.Join(dir, verdictFile))
	if err != nil {
		return 0
	}
	var vf verdictFileJSON
	if err := json.Unmarshal(data, &vf); err != nil || vf.Schema != core.SchemaVersion {
		return 0
	}
	n := 0
	for _, sv := range vf.Verdicts {
		errs, err := core.DecodeErrorReports(sv.Errors)
		if err != nil {
			continue
		}
		res := &core.Result{
			Stats:           sv.Stats,
			Truncated:       sv.Truncated,
			TruncatedReason: sv.TruncatedReason,
		}
		res.Stats.Errors = errs
		cache.put(sv.Key, res)
		n++
	}
	return n
}

// saveVerdicts writes the cache snapshot atomically (temp file + rename),
// so a crash mid-write leaves the previous file intact.
func saveVerdicts(dir string, cache *verdictCache) error {
	entries := cache.snapshot()
	vf := verdictFileJSON{Schema: core.SchemaVersion, Verdicts: make([]storedVerdict, 0, len(entries))}
	for _, e := range entries {
		sv := storedVerdict{
			Key:             e.key,
			Stats:           e.res.Stats,
			Errors:          core.EncodeErrorReports(e.res.Errors),
			Truncated:       e.res.Truncated,
			TruncatedReason: e.res.TruncatedReason,
		}
		sv.Stats.Errors = nil
		vf.Verdicts = append(vf.Verdicts, sv)
	}
	data, err := json.Marshal(vf)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, verdictFile)
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
