package service_test

import (
	"net/http"
	"strings"
	"testing"

	"hmc/internal/service"
)

// TestHTTPShardedJobViaPeer runs a two-shard job whose second shard is
// served by a *separate* service over POST /v1/shards — the full
// distributed path: LegWire encode, peer-side program rebuild, leg
// execution, checkpoint return, coordinator merge. The verdict must be
// the exact single-explorer totals, and the peer must have counted the
// leg it served.
func TestHTTPShardedJobViaPeer(t *testing.T) {
	_, peerTS := startServer(t, service.Config{Workers: 1})
	_, coordTS := startServer(t, service.Config{Workers: 1, Peers: []string{peerTS.URL}})

	// 8 writes over 3 threads: 8!/(3!·3!·2!) = 560 interleavings — big
	// enough to split across shards, small enough for the race detector.
	source := "name peer-writes\n" +
		"T0: W x 1 ; W x 2 ; W x 3\n" +
		"T1: W x 11 ; W x 12 ; W x 13\n" +
		"T2: W x 21 ; W x 22\n" +
		"exists x=3\n"
	body := `{"model": "sc", "shards": 2, "source": ` + jsonString(source) + `}`
	status, job := postJob(t, coordTS, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	done := pollJob(t, coordTS, job.ID)
	if done.State != "done" || done.Result == nil {
		t.Fatalf("job state %s (err %q)", done.State, done.Error)
	}
	if done.Result.Executions != 560 || !done.Result.Exhaustive {
		t.Fatalf("sharded-via-peer result %+v, want exhaustive 560 executions", done.Result)
	}

	status, metrics := getBody(t, peerTS, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("peer /metrics: status %d", status)
	}
	if served := metricValue(t, metrics, "hmcd_shard_legs_served_total"); served == "0" {
		t.Fatal("peer served no shard legs; the job ran entirely locally")
	}
	status, shardStatus := getBody(t, peerTS, "/v1/shards")
	if status != http.StatusOK || !strings.Contains(shardStatus, `"served":`) {
		t.Fatalf("GET /v1/shards: status %d body %s", status, shardStatus)
	}
}

// TestHTTPShardLegRejectsBadBodies: the peer-leg endpoint is an
// untrusted-input boundary like job submission.
func TestHTTPShardLegRejectsBadBodies(t *testing.T) {
	_, ts := startServer(t, service.Config{Workers: 1})
	for _, tc := range []struct{ name, body string }{
		{"not json", "not json"},
		{"unknown field", `{"bogus": 1}`},
		{"no program", `{"model": "sc", "shard": "2:0"}`},
		{"both programs", `{"source": "name x\nT0: W x 1\nexists x=1\n", "test": "SB", "model": "sc"}`},
		{"unknown test", `{"test": "no-such-test", "model": "sc"}`},
		{"no checkpoint", `{"test": "SB", "model": "sc", "shard": "2:0"}`},
	} {
		resp, err := http.Post(ts.URL+"/v1/shards", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// jsonString quotes s as a JSON string literal.
func jsonString(s string) string {
	b := new(strings.Builder)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
