package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"hmc/internal/core"
)

// The job journal is hmcd's write-ahead log: every accepted job, every
// periodic exploration checkpoint, and every terminal transition is
// appended (and fsynced) to a JSONL file in the journal directory before
// the service answers. On startup the journal is replayed: jobs that were
// queued or running when the process died are re-enqueued, resuming from
// their last checkpoint, so a SIGKILL costs at most the work done since
// the last checkpoint record.
//
// The format is line-oriented on purpose — a crash mid-append leaves at
// most one torn final line, which replay skips. Files rotate at a size
// bound; each fresh file starts with a compaction snapshot (the live jobs
// and their latest checkpoints), so rotation also garbage-collects the
// records of finished jobs and superseded checkpoints. Records carry the
// engine schema version: after an engine upgrade, stale records are
// dropped on load rather than resumed into a checker with different
// semantics.

// Journal record types.
const (
	jrecSubmit     = "submit"
	jrecCheckpoint = "checkpoint"
	jrecDone       = "done"
)

// jrec is one journal line. Submit records embed the job's request
// (litmus source or corpus test name — jobs submitted through the library
// API without either are not journaled, as the program cannot be rebuilt
// on replay); checkpoint records carry the encoded core.Checkpoint; done
// records carry the terminal state.
type jrec struct {
	Type   string `json:"type"`
	Schema int    `json:"schema"`
	ID     string `json:"id"`

	Source        string `json:"source,omitempty"`
	Test          string `json:"test,omitempty"`
	Model         string `json:"model,omitempty"`
	MaxExecutions int    `json:"max_executions,omitempty"`
	MaxEvents     int    `json:"max_events,omitempty"`
	MemoryBudget  int64  `json:"memory_budget,omitempty"`
	Workers       int    `json:"workers,omitempty"`
	Symmetry      bool   `json:"symmetry,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	TimeoutMS     int64  `json:"timeout_ms,omitempty"`

	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`

	State string `json:"state,omitempty"`
}

// journalJob is the live (incomplete) state of one journaled job.
type journalJob struct {
	submit     jrec
	checkpoint json.RawMessage // latest, nil before the first one
}

// journalStats reports what startup replay found.
type journalStats struct {
	liveJobs    int // jobs to re-enqueue
	skipped     int // torn or unparseable lines dropped
	wrongSchema int // records from another engine schema dropped
}

// journalFile is what the journal needs from its backing file. *os.File
// satisfies it directly; tests and the chaos harness interpose fault-
// injecting wrappers through journalHooks.Wrap.
type journalFile interface {
	io.WriteCloser
	Sync() error
	Name() string
}

// journalHooks customises a journal's file handling. Both fields are
// optional.
type journalHooks struct {
	// Wrap interposes on every freshly opened journal file (used by the
	// chaos harness to inject write/fsync faults).
	Wrap func(journalFile) journalFile
	// OnWriteError is called, without j.mu held by the caller's metrics
	// in mind, for every failed write or fsync — once per failure, after
	// classification.
	OnWriteError func(err error)
}

// journal is the append side. All methods are safe for concurrent use;
// the lock also covers rotation, so a checkpoint append never interleaves
// with a compaction snapshot. The journal never calls back into the
// service (no lock-order entanglement with Service.mu).
type journal struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	hooks    journalHooks
	f        journalFile
	size     int64
	seq      int
	live     map[string]*journalJob
	dead     bool // test hook: simulate the process having been killed

	degraded    bool   // a write or fsync failed and has not yet succeeded again
	degradedWhy string // classification of the most recent failure
}

const defaultJournalMaxBytes = 4 << 20

// openJournal loads dir, replays existing journal files into the live-job
// map, starts a fresh file seeded with a compaction snapshot, and removes
// the old files. The returned stats include the live jobs for the caller
// to re-enqueue (fetch them with takeLive).
func openJournal(dir string, maxBytes int64) (*journal, journalStats, error) {
	return openJournalWith(dir, maxBytes, journalHooks{})
}

// openJournalWith is openJournal with file hooks (fault injection,
// write-error accounting).
func openJournalWith(dir string, maxBytes int64, hooks journalHooks) (*journal, journalStats, error) {
	if maxBytes <= 0 {
		maxBytes = defaultJournalMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, journalStats{}, err
	}
	j := &journal{dir: dir, maxBytes: maxBytes, hooks: hooks, live: map[string]*journalJob{}}
	files, err := j.files()
	if err != nil {
		return nil, journalStats{}, err
	}
	var stats journalStats
	for _, path := range files {
		s, err := j.replayFile(path)
		if err != nil {
			return nil, journalStats{}, err
		}
		stats.skipped += s.skipped
		stats.wrongSchema += s.wrongSchema
	}
	stats.liveJobs = len(j.live)
	// Start the next sequence file with a snapshot of the live state, then
	// drop the old files: replay is now redundant with the snapshot.
	j.seq++
	if err := j.rotateLocked(); err != nil {
		return nil, journalStats{}, err
	}
	for _, path := range files {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, journalStats{}, err
		}
	}
	return j, stats, nil
}

// files lists the journal files in sequence order and records the highest
// sequence number seen.
func (j *journal) files() ([]string, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(name, "journal-%d.jsonl", &seq); err != nil {
			continue
		}
		if seq > j.seq {
			j.seq = seq
		}
		paths = append(paths, filepath.Join(j.dir, name))
	}
	sort.Strings(paths) // zero-padded names: lexical = sequence order
	return paths, nil
}

// replayFile folds one journal file into the live map. Unparseable lines
// (a torn tail from a crash mid-append, or garbage) and records from
// another engine schema are counted and skipped, never fatal: the journal
// must be readable after exactly the failures it exists to survive.
func (j *journal) replayFile(path string) (journalStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return journalStats{}, err
	}
	defer f.Close()
	var stats journalStats
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec jrec
		if err := json.Unmarshal(line, &rec); err != nil {
			stats.skipped++
			continue
		}
		if rec.Schema != core.SchemaVersion {
			stats.wrongSchema++
			continue
		}
		j.applyLocked(rec)
	}
	if err := sc.Err(); err != nil {
		// An over-long torn line: treat like any other torn tail.
		stats.skipped++
	}
	return stats, nil
}

// applyLocked folds one record into the live map.
func (j *journal) applyLocked(rec jrec) {
	switch rec.Type {
	case jrecSubmit:
		if rec.Source == "" && rec.Test == "" {
			return
		}
		j.live[rec.ID] = &journalJob{submit: rec}
	case jrecCheckpoint:
		if jj, ok := j.live[rec.ID]; ok && len(rec.Checkpoint) > 0 {
			jj.checkpoint = rec.Checkpoint
		}
	case jrecDone:
		delete(j.live, rec.ID)
	}
}

// takeLive removes and returns the live jobs in id order (ids are
// zero-padded and monotonic, so lexical order is submission order).
func (j *journal) takeLive() []*journalJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*journalJob, 0, len(j.live))
	for _, jj := range j.live {
		out = append(out, jj)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].submit.ID < out[b].submit.ID })
	// The jobs stay live (they are incomplete until their done record);
	// only the caller's need to enumerate them once is consumed.
	return out
}

// maxLiveID returns the largest numeric suffix among live job ids, so a
// restarted service continues the id sequence without collisions.
func (j *journal) maxLiveID() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	max := 0
	for id := range j.live {
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > max {
			max = n
		}
	}
	return max
}

// submit journals an accepted job.
func (j *journal) submit(id string, req SubmitRequest) {
	if req.Source == "" && req.Test == "" {
		return // not rebuildable on replay; see jrec
	}
	j.append(jrec{
		Type:          jrecSubmit,
		ID:            id,
		Source:        req.Source,
		Test:          req.Test,
		Model:         req.Model,
		MaxExecutions: req.MaxExecutions,
		MaxEvents:     req.MaxEvents,
		MemoryBudget:  req.MemoryBudget,
		Workers:       req.Workers,
		Symmetry:      req.Symmetry,
		Shards:        req.Shards,
		TimeoutMS:     req.Timeout.Milliseconds(),
	})
}

// checkpoint journals a periodic exploration snapshot. Returns false when
// the encode failed (the job keeps running; it just resumes from an older
// point after a crash).
func (j *journal) checkpoint(id string, cp *core.Checkpoint) bool {
	data, err := cp.Encode()
	if err != nil {
		return false
	}
	j.append(jrec{Type: jrecCheckpoint, ID: id, Checkpoint: data})
	return true
}

// done journals a terminal transition, retiring the job from the live
// set.
func (j *journal) done(id string, state JobState) {
	j.append(jrec{Type: jrecDone, ID: id, State: string(state)})
}

// append writes one fsynced record and rotates past the size bound.
func (j *journal) append(rec jrec) {
	rec.Schema = core.SchemaVersion
	data, err := json.Marshal(rec)
	if err != nil {
		return // jrec is plain data; cannot happen
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return
	}
	j.applyLocked(rec)
	if j.f == nil {
		return
	}
	n, err := j.f.Write(data)
	j.size += int64(n)
	if err != nil {
		// Disk trouble: degrade to an in-memory journal rather than wedge
		// the worker. The record is already applied to the live map, so
		// serving continues; only crash durability is lost until a write
		// succeeds again, and /readyz reports the window.
		j.noteWriteErrorLocked("write", err)
		return
	}
	if err := j.f.Sync(); err != nil {
		j.noteWriteErrorLocked("fsync", err)
		return
	}
	if j.degraded {
		// A full write+fsync landed: durability is back.
		j.degraded, j.degradedWhy = false, ""
	}
	if j.size > j.maxBytes {
		j.seq++
		j.rotateLocked() //nolint:errcheck // keep appending to the old file on failure
	}
}

// noteWriteErrorLocked classifies a failed write or fsync, flips the
// journal into its degraded state, and reports the failure to the
// OnWriteError hook. Callers hold j.mu.
func (j *journal) noteWriteErrorLocked(op string, err error) {
	why := op + " error"
	if errors.Is(err, syscall.ENOSPC) {
		why = "disk full (ENOSPC)"
	}
	j.degraded, j.degradedWhy = true, why
	if j.hooks.OnWriteError != nil {
		j.hooks.OnWriteError(err)
	}
}

// degradedState reports whether the journal is running without durability
// (a write or fsync failed and none has succeeded since) and why.
func (j *journal) degradedState() (bool, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded, j.degradedWhy
}

// rotateLocked opens journal-<seq>.jsonl, writes a compaction snapshot of
// the live jobs, fsyncs it, and retires the previous file. Callers hold
// j.mu (or are on the single-threaded open path).
func (j *journal) rotateLocked() error {
	path := filepath.Join(j.dir, fmt.Sprintf("journal-%09d.jsonl", j.seq))
	of, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var f journalFile = of
	if j.hooks.Wrap != nil {
		f = j.hooks.Wrap(f)
	}
	var buf []byte
	for _, jj := range j.liveSorted() {
		line, err := json.Marshal(jj.submit)
		if err != nil {
			continue
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		if len(jj.checkpoint) > 0 {
			line, err := json.Marshal(jrec{
				Type: jrecCheckpoint, Schema: jj.submit.Schema, ID: jj.submit.ID, Checkpoint: jj.checkpoint,
			})
			if err != nil {
				continue
			}
			buf = append(buf, line...)
			buf = append(buf, '\n')
		}
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(path) //nolint:errcheck // best effort
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path) //nolint:errcheck // best effort
		return err
	}
	old, oldPath := j.f, ""
	if old != nil {
		oldPath = old.Name()
	}
	j.f, j.size = f, int64(len(buf))
	if old != nil {
		old.Close()
		os.Remove(oldPath) //nolint:errcheck // superseded by the snapshot
	}
	return nil
}

// liveSorted returns the live jobs in id order. Callers hold j.mu.
func (j *journal) liveSorted() []*journalJob {
	out := make([]*journalJob, 0, len(j.live))
	for _, jj := range j.live {
		out = append(out, jj)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].submit.ID < out[b].submit.ID })
	return out
}

// kill simulates the process dying for restart tests: all subsequent
// appends are dropped, exactly as if the process had been SIGKILLed at
// this instant (the on-disk state freezes).
func (j *journal) kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dead = true
}

// close flushes and closes the journal file.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Sync() //nolint:errcheck // best effort on shutdown
		j.f.Close()
		j.f = nil
	}
}
