package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hmc/internal/core"
	"hmc/internal/litmus"
	"hmc/internal/prog"
)

// CrashArtifact is a self-contained repro of an engine failure: everything
// needed to replay the exploration that panicked — the program (litmus
// source or corpus test name when the job arrived that way, plus a textual
// dump either way), the model, and the exact bounds — together with the
// recovered panic value, stack, and the exploration stats at failure.
// Artifacts are written as JSON into the service's crash directory and
// replayed with `hmc -repro <file>`.
type CrashArtifact struct {
	// Schema is the engine schema version (core.SchemaVersion) the
	// crashing binary ran. Replay refuses artifacts from another schema:
	// the repro would exercise different exploration semantics than the
	// ones that crashed.
	Schema int `json:"schema"`

	JobID       string    `json:"job_id"`
	Time        time.Time `json:"time"`
	Program     string    `json:"program"`
	Fingerprint string    `json:"fingerprint"`
	Model       string    `json:"model"`

	// Exactly one of Source/Test is set when the submission carried one;
	// ProgramDump is always set (human-readable, not machine-replayable).
	Source      string `json:"source,omitempty"`
	Test        string `json:"test,omitempty"`
	ProgramDump string `json:"program_dump"`

	// The exploration bounds in force when the engine died.
	MaxExecutions int   `json:"max_executions,omitempty"`
	MaxEvents     int   `json:"max_events,omitempty"`
	MemoryBudget  int64 `json:"memory_budget,omitempty"`
	Workers       int   `json:"workers,omitempty"`
	Symmetry      bool  `json:"symmetry,omitempty"`
	TimeoutMS     int64 `json:"timeout_ms,omitempty"`
	Attempts      int   `json:"attempts"`

	Panic string     `json:"panic"`
	Stack string     `json:"stack"`
	Stats core.Stats `json:"stats"`
}

// BuildProgram reconstructs the crashing program for replay: from the
// litmus source when the artifact has one, else from the named corpus
// test. Artifacts of programs submitted through the library API carry only
// a textual dump and cannot be rebuilt.
func (a *CrashArtifact) BuildProgram() (*prog.Program, error) {
	switch {
	case a.Source != "":
		return litmus.Parse(a.Source)
	case a.Test != "":
		tc, ok := litmus.ByName(a.Test)
		if !ok {
			return nil, fmt.Errorf("crash artifact: unknown corpus test %q", a.Test)
		}
		return tc.P, nil
	}
	return nil, errors.New("crash artifact: no litmus source or test name; program dump is not replayable")
}

// LoadCrashArtifact reads one artifact file written by the service.
func LoadCrashArtifact(path string) (*CrashArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &CrashArtifact{}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, fmt.Errorf("crash artifact %s: %w", path, err)
	}
	if a.Schema != core.SchemaVersion {
		return nil, fmt.Errorf("crash artifact %s: engine schema %d, this binary is %d — not replayable",
			path, a.Schema, core.SchemaVersion)
	}
	return a, nil
}

// crashStore keeps at most max artifact files in dir, evicting oldest
// first. It does no locking of its own: the service serializes writes.
type crashStore struct {
	dir string
	max int
}

// write serializes a crash artifact into the store and evicts beyond the
// bound. It returns the path of the file written.
func (cs *crashStore) write(a *CrashArtifact) (string, error) {
	return cs.writeJSON("crash", a.Fingerprint, a.JobID, a)
}

// writeJSON serializes any artifact under a kind-prefixed name — the
// shared body of the crash and quarantine stores.
func (cs *crashStore) writeJSON(kind, fingerprint, jobID string, v any) (string, error) {
	if err := os.MkdirAll(cs.dir, 0o755); err != nil {
		return "", err
	}
	fp := fingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	path := filepath.Join(cs.dir, fmt.Sprintf("%s-%s-%s.json", kind, fp, jobID))
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	if err := cs.evict(); err != nil {
		return path, err
	}
	return path, nil
}

// count reports the resident artifact files.
func (cs *crashStore) count() int {
	names, err := cs.list()
	if err != nil {
		return 0
	}
	return len(names)
}

// list returns the store's artifact paths, oldest first (mod time, then
// name — job ids are monotonic, so the tie-break is deterministic under
// coarse clocks).
func (cs *crashStore) list() ([]string, error) {
	entries, err := os.ReadDir(cs.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type aged struct {
		path string
		mod  time.Time
	}
	var files []aged
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{filepath.Join(cs.dir, e.Name()), info.ModTime()})
	}
	sort.Slice(files, func(i, k int) bool {
		if !files[i].mod.Equal(files[k].mod) {
			return files[i].mod.Before(files[k].mod)
		}
		return files[i].path < files[k].path
	})
	paths := make([]string, len(files))
	for i, f := range files {
		paths[i] = f.path
	}
	return paths, nil
}

// evict removes the oldest artifacts beyond the bound.
func (cs *crashStore) evict() error {
	if cs.max <= 0 {
		return nil
	}
	paths, err := cs.list()
	if err != nil {
		return err
	}
	for len(paths) > cs.max {
		if err := os.Remove(paths[0]); err != nil && !os.IsNotExist(err) {
			return err
		}
		paths = paths[1:]
	}
	return nil
}

// breaker is a per-fingerprint circuit breaker: after threshold engine
// crashes on the same program content, further submissions of that
// fingerprint are rejected until the cooldown has passed since the last
// crash — one poisoned test cannot grind the worker pool in a crash loop.
// After the cooldown the breaker goes half-open: exactly one probe
// submission is admitted, and the entry stays tripped until that probe's
// outcome arrives — succeed closes the breaker, another crash reopens it
// with a fresh cooldown. The trip map is bounded; when full, the stalest
// entry is dropped (a fingerprint that has not crashed recently is the
// safest to forget).
type breaker struct {
	threshold int
	cooldown  time.Duration
	trips     map[string]*breakerEntry
}

type breakerEntry struct {
	count   int
	last    time.Time
	probing bool
	probeAt time.Time // when the in-flight half-open probe was admitted
}

const breakerMaxEntries = 1024

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, trips: map[string]*breakerEntry{}}
}

// allow reports whether a submission of fp should be accepted. A tripped
// entry past its cooldown admits exactly one half-open probe; the entry
// is only cleared when succeed reports the probe ran clean.
func (b *breaker) allow(fp string, now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	e, ok := b.trips[fp]
	if !ok {
		return true
	}
	if e.count < b.threshold {
		return true
	}
	if e.probing {
		// A probe is in flight; wait for its verdict. A probe whose
		// verdict never arrives (canceled, lost to history eviction) must
		// not wedge the fingerprint shut forever — after a full further
		// cooldown the breaker admits a fresh probe.
		if now.Sub(e.probeAt) < b.cooldown {
			return false
		}
		e.probeAt = now
		return true
	}
	if now.Sub(e.last) >= b.cooldown {
		e.probing = true
		e.probeAt = now
		return true
	}
	return false
}

// record notes one engine crash on fp. A crash during a half-open probe
// reopens the breaker with a fresh cooldown.
func (b *breaker) record(fp string, now time.Time) {
	e, ok := b.trips[fp]
	if !ok {
		if len(b.trips) >= breakerMaxEntries {
			var stalest string
			var stalestAt time.Time
			for k, v := range b.trips {
				if stalest == "" || v.last.Before(stalestAt) {
					stalest, stalestAt = k, v.last
				}
			}
			delete(b.trips, stalest)
		}
		e = &breakerEntry{}
		b.trips[fp] = e
	}
	e.count++
	e.last = now
	e.probing = false
}

// succeed notes a clean run of fp: a half-open probe (or any successful
// submission) closes the breaker and forgets the crash history.
func (b *breaker) succeed(fp string) {
	delete(b.trips, fp)
}
