package service

import (
	"fmt"
	"io"
	"sync/atomic"

	"hmc/internal/core"
)

// Metrics holds the service's monotonic counters, updated with atomics so
// the /metrics endpoint never contends with running explorations. Job
// counters track the queue lifecycle; explorer counters accumulate the
// Stats of every finished (non-cached) job, so the daemon exports the same
// numbers the paper's tables report, summed over its lifetime.
type Metrics struct {
	JobsSubmitted   atomic.Int64 // accepted submissions (including cache hits)
	JobsRejected    atomic.Int64 // refused: queue full or draining
	JobsCompleted   atomic.Int64 // explorations that ran to a result
	JobsFailed      atomic.Int64 // explorations that returned an error
	JobsCanceled    atomic.Int64 // canceled by the client
	JobsInterrupted atomic.Int64 // stopped by a deadline, partial result
	CacheHits       atomic.Int64
	CacheMisses     atomic.Int64
	InFlight        atomic.Int64 // currently running explorations (gauge)

	VetFindings     atomic.Int64 // static-analysis findings attached to submissions
	EngineErrors    atomic.Int64 // engine panics contained as EngineError
	CrashArtifacts  atomic.Int64 // crash repro files written
	JobsRetried     atomic.Int64 // re-runs after a memory-budget truncation
	BreakerRejected atomic.Int64 // submissions refused by the circuit breaker

	JournalReplayedJobs   atomic.Int64 // incomplete jobs re-enqueued from the journal on startup
	JournalCheckpoints    atomic.Int64 // periodic exploration checkpoints journaled
	JournalSkippedRecords atomic.Int64 // torn or wrong-schema journal records dropped on replay
	ResumeSavedExecs      atomic.Int64 // executions restored from checkpoints instead of re-explored
	VerdictsReloaded      atomic.Int64 // cache entries restored from verdicts.json on startup

	Executions        atomic.Int64
	ExistsCount       atomic.Int64
	Blocked           atomic.Int64
	States            atomic.Int64
	MemoHits          atomic.Int64
	RevisitsTried     atomic.Int64
	RevisitsTaken     atomic.Int64
	ConsistencyChecks atomic.Int64
}

// CacheHitRate returns hits / (hits+misses), or 0 before any lookup.
func (m *Metrics) CacheHitRate() float64 {
	h, mi := m.CacheHits.Load(), m.CacheMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// writePrometheus renders the counters in the Prometheus text exposition
// format (version 0.0.4), stdlib only. queueDepth and cacheEntries are
// point-in-time gauges supplied by the service.
func (m *Metrics) writePrometheus(w io.Writer, queueDepth, cacheEntries, crashResident int, ready bool) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeI := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("hmcd_jobs_submitted_total", "Jobs accepted for checking.", m.JobsSubmitted.Load())
	counter("hmcd_jobs_rejected_total", "Jobs refused (queue full or draining).", m.JobsRejected.Load())
	counter("hmcd_jobs_completed_total", "Explorations that produced a result.", m.JobsCompleted.Load())
	counter("hmcd_jobs_failed_total", "Explorations that returned an error.", m.JobsFailed.Load())
	counter("hmcd_jobs_canceled_total", "Jobs canceled by the client.", m.JobsCanceled.Load())
	counter("hmcd_jobs_interrupted_total", "Jobs stopped by a deadline with partial results.", m.JobsInterrupted.Load())
	counter("hmcd_vet_findings_total", "Static-analysis findings attached to accepted submissions.", m.VetFindings.Load())
	counter("hmcd_engine_errors_total", "Engine panics contained as structured errors.", m.EngineErrors.Load())
	counter("hmcd_crash_artifacts_total", "Crash repro artifacts written.", m.CrashArtifacts.Load())
	counter("hmcd_jobs_retried_total", "Job re-runs after a transient memory-budget truncation.", m.JobsRetried.Load())
	counter("hmcd_breaker_rejected_total", "Submissions refused by the per-program circuit breaker.", m.BreakerRejected.Load())
	counter("hmcd_journal_replayed_jobs_total", "Incomplete jobs re-enqueued from the journal on startup.", m.JournalReplayedJobs.Load())
	counter("hmcd_journal_checkpoints_total", "Periodic exploration checkpoints journaled.", m.JournalCheckpoints.Load())
	counter("hmcd_journal_skipped_records_total", "Torn or wrong-schema journal records dropped on replay.", m.JournalSkippedRecords.Load())
	counter("hmcd_resume_saved_execs_total", "Executions restored from checkpoints instead of re-explored.", m.ResumeSavedExecs.Load())
	counter("hmcd_verdicts_reloaded_total", "Verdict cache entries restored from disk on startup.", m.VerdictsReloaded.Load())
	readyV := int64(0)
	if ready {
		readyV = 1
	}
	gaugeI("hmcd_ready", "1 once journal replay has finished and the service accepts work.", readyV)
	gaugeI("hmcd_crash_artifacts_resident", "Crash artifacts currently on disk.", int64(crashResident))
	counter("hmcd_cache_hits_total", "Verdict cache hits.", m.CacheHits.Load())
	counter("hmcd_cache_misses_total", "Verdict cache misses.", m.CacheMisses.Load())
	gaugeF("hmcd_cache_hit_rate", "Verdict cache hit rate since start.", m.CacheHitRate())
	gaugeI("hmcd_cache_entries", "Verdict cache entries resident.", int64(cacheEntries))
	gaugeI("hmcd_queue_depth", "Jobs waiting in the queue.", int64(queueDepth))
	gaugeI("hmcd_jobs_inflight", "Explorations currently running.", m.InFlight.Load())
	counter("hmcd_executions_total", "Complete consistent executions explored.", m.Executions.Load())
	counter("hmcd_exists_total", "Executions satisfying their Exists clause.", m.ExistsCount.Load())
	counter("hmcd_blocked_total", "Maximal blocked executions.", m.Blocked.Load())
	counter("hmcd_states_total", "Distinct exploration states visited.", m.States.Load())
	counter("hmcd_memo_hits_total", "States pruned by the exploration memo.", m.MemoHits.Load())
	counter("hmcd_revisits_tried_total", "Backward revisit candidates considered.", m.RevisitsTried.Load())
	counter("hmcd_revisits_taken_total", "Backward revisits taken.", m.RevisitsTaken.Load())
	counter("hmcd_consistency_checks_total", "Memory-model consistency checks.", m.ConsistencyChecks.Load())
}

// addStats folds one finished exploration's counters into the totals.
func (m *Metrics) addStats(s *core.Stats) {
	m.Executions.Add(int64(s.Executions))
	m.ExistsCount.Add(int64(s.ExistsCount))
	m.Blocked.Add(int64(s.Blocked))
	m.States.Add(int64(s.States))
	m.MemoHits.Add(int64(s.MemoHits))
	m.RevisitsTried.Add(int64(s.RevisitsTried))
	m.RevisitsTaken.Add(int64(s.RevisitsTaken))
	m.ConsistencyChecks.Add(int64(s.ConsistencyChecks))
}
