package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hmc/internal/core"
	"hmc/internal/obs"
)

// Metrics holds the service's monotonic counters, updated with atomics so
// the /metrics endpoint never contends with running explorations. Job
// counters track the queue lifecycle; explorer counters accumulate the
// Stats of every finished (non-cached) job, so the daemon exports the same
// numbers the paper's tables report, summed over its lifetime.
type Metrics struct {
	JobsSubmitted   atomic.Int64 // accepted submissions (including cache hits)
	JobsRejected    atomic.Int64 // refused: queue full or draining
	JobsCompleted   atomic.Int64 // explorations that ran to a result
	JobsFailed      atomic.Int64 // explorations that returned an error
	JobsCanceled    atomic.Int64 // canceled by the client
	JobsInterrupted atomic.Int64 // stopped by a deadline, partial result
	CacheHits       atomic.Int64
	CacheMisses     atomic.Int64
	InFlight        atomic.Int64 // currently running explorations (gauge)

	VetFindings     atomic.Int64 // static-analysis findings attached to submissions
	EngineErrors    atomic.Int64 // engine panics contained as EngineError
	CrashArtifacts  atomic.Int64 // crash repro files written
	JobsRetried     atomic.Int64 // re-runs after a memory-budget truncation
	BreakerRejected atomic.Int64 // submissions refused by the circuit breaker

	// Sharded-exploration counters (internal/shard): legs running across
	// all sharded jobs (gauge), completed work-steals, leg re-runs after a
	// worker death, and peer legs served through POST /v1/shards (gauge of
	// in-flight ones plus a lifetime total).
	ShardsActive    atomic.Int64
	ShardSteals     atomic.Int64
	ShardRetries    atomic.Int64
	ShardLegsActive atomic.Int64
	ShardLegsServed atomic.Int64

	// Peer-resilience counters (internal/shard pool): failed /readyz
	// probes, transient-error retries before demotion, hedged straggler
	// legs, and legs demoted to local execution.
	PeerProbeFailures    atomic.Int64
	PeerTransientRetries atomic.Int64
	ShardLegHedges       atomic.Int64
	PeerDemotions        atomic.Int64

	// Portfolio counters (internal/backend): backend runs launched in
	// races, races won, runs cut off by deadline or grace cancellation,
	// confirmed cross-backend disagreements, jobs quarantined by one, and
	// disagreement repro artifacts written.
	BackendRuns          atomic.Int64
	BackendWins          atomic.Int64
	BackendTimeouts      atomic.Int64
	BackendDisagreements atomic.Int64
	JobsQuarantined      atomic.Int64
	QuarantineArtifacts  atomic.Int64

	JournalWriteErrors atomic.Int64 // journal write/fsync failures survived in degraded mode

	JournalReplayedJobs   atomic.Int64 // incomplete jobs re-enqueued from the journal on startup
	JournalCheckpoints    atomic.Int64 // periodic exploration checkpoints journaled
	JournalSkippedRecords atomic.Int64 // torn or wrong-schema journal records dropped on replay
	ResumeSavedExecs      atomic.Int64 // executions restored from checkpoints instead of re-explored
	VerdictsReloaded      atomic.Int64 // cache entries restored from verdicts.json on startup

	Executions        atomic.Int64
	ExistsCount       atomic.Int64
	Blocked           atomic.Int64
	States            atomic.Int64
	MemoHits          atomic.Int64
	RevisitsTried     atomic.Int64
	RevisitsTaken     atomic.Int64
	ConsistencyChecks atomic.Int64

	HTTPEncodeErrors atomic.Int64 // JSON responses whose marshal failed (500 fallback served)
	CacheEvictions   atomic.Int64 // verdict-cache entries dropped by LRU pressure

	// Sampled phase-time totals (nanoseconds) accumulated from each
	// finished job's final progress snapshot — where exploration wall-clock
	// goes, fleet-wide.
	PhaseInterpNS      atomic.Int64
	PhaseConsistencyNS atomic.Int64
	PhaseRevisitNS     atomic.Int64

	// Distributions, fed by the per-job progress sink: overall
	// executions/sec per finished job, frontier width per snapshot, and the
	// mean consistency-check latency per finished job.
	JobExecRate             histogram
	WaveSize                histogram
	ConsistencyCheckSeconds histogram

	// backendLat is the per-backend portfolio run-latency distribution,
	// keyed by backend name and rendered with a backend label (like the
	// per-peer health gauges). Guarded by backendLatMu; histograms are
	// created on first observation.
	backendLatMu sync.Mutex
	backendLat   map[string]*histogram

	histOnce sync.Once
}

// Histogram bucket bounds. Exec rates span toy litmus tests (tens/sec
// under a deliberate deadline) to saturated exploration (hundreds of
// thousands/sec); wave sizes are frontier widths between drains;
// consistency checks are microsecond-scale graph traversals.
var (
	execRateBounds = []float64{10, 100, 1e3, 1e4, 5e4, 1e5, 5e5, 1e6}
	waveSizeBounds = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}
	checkSecBounds = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}
	// Backend races span sub-millisecond oracle runs on toy litmus tests
	// to DFS anchors grinding for minutes.
	backendLatBounds = []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60, 300}
)

// observeBackendLatency folds one portfolio run's wall-clock into the
// backend's latency distribution.
func (m *Metrics) observeBackendLatency(name string, seconds float64) {
	m.backendLatMu.Lock()
	defer m.backendLatMu.Unlock()
	if m.backendLat == nil {
		m.backendLat = map[string]*histogram{}
	}
	h := m.backendLat[name]
	if h == nil {
		h = &histogram{}
		h.init(backendLatBounds)
		m.backendLat[name] = h
	}
	h.observe(seconds)
}

// ensureHistograms sets the bucket bounds exactly once; callers invoke it
// before any observe or export so the zero-valued Metrics struct keeps
// working without a constructor.
func (m *Metrics) ensureHistograms() {
	m.histOnce.Do(func() {
		m.JobExecRate.init(execRateBounds)
		m.WaveSize.init(waveSizeBounds)
		m.ConsistencyCheckSeconds.init(checkSecBounds)
	})
}

// ObserveProgress folds one progress snapshot into the service-wide
// distributions: every snapshot contributes its frontier width, and the
// final snapshot of a run contributes the job's overall execution rate,
// phase-time totals and mean consistency-check latency.
func (m *Metrics) ObserveProgress(snap obs.ProgressSnapshot) {
	m.ensureHistograms()
	m.WaveSize.observe(float64(snap.Frontier))
	if !snap.Final {
		return
	}
	m.JobExecRate.observe(snap.ExecsPerSec)
	ph := snap.Phases
	m.PhaseInterpNS.Add(int64(ph.Interp))
	m.PhaseConsistencyNS.Add(int64(ph.Consistency))
	m.PhaseRevisitNS.Add(int64(ph.Revisit))
	if ph.ConsistencyCalls > 0 && ph.Consistency > 0 {
		mean := time.Duration(int64(ph.Consistency) / ph.ConsistencyCalls)
		m.ConsistencyCheckSeconds.observe(mean.Seconds())
	}
}

// histogram is a minimal fixed-bucket Prometheus histogram, stdlib only.
// Observations land at wave cadence (not per event), so one mutex is
// plenty; the zero value is unusable until init sets the bounds.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // bucket upper bounds, ascending; +Inf is implicit
	counts []int64   // len(bounds)+1; the last slot is the +Inf bucket
	sum    float64
}

func (h *histogram) init(bounds []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.bounds = bounds
	h.counts = make([]int64, len(bounds)+1)
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		return // bounds never set: drop rather than panic
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
}

// write renders the histogram in the Prometheus text format (cumulative
// le buckets, sum, count).
func (h *histogram) write(w io.Writer, name, help string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	if h.counts != nil {
		cum += h.counts[len(h.bounds)]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// writeLabeled renders the histogram's bucket/sum/count lines with an
// extra label pair; the caller emits the family's HELP/TYPE header once.
func (h *histogram) writeLabeled(w io.Writer, name, label string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%g\"} %d\n", name, label, b, cum)
	}
	if h.counts != nil {
		cum += h.counts[len(h.bounds)]
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, cum)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, label, h.sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, cum)
}

// CacheHitRate returns hits / (hits+misses), or 0 before any lookup.
func (m *Metrics) CacheHitRate() float64 {
	h, mi := m.CacheHits.Load(), m.CacheMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// writePrometheus renders the counters in the Prometheus text exposition
// format (version 0.0.4), stdlib only. queueDepth, cacheEntries, cacheCap
// and crashResident are point-in-time gauges supplied by the service;
// peers carries the peer pool's per-peer health snapshot (nil when the
// run is single-process).
func (m *Metrics) writePrometheus(w io.Writer, queueDepth, cacheEntries, cacheCap, crashResident int, ready bool, peers []obs.PeerProgress) {
	m.ensureHistograms()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counterF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gaugeI := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("hmcd_jobs_submitted_total", "Jobs accepted for checking.", m.JobsSubmitted.Load())
	counter("hmcd_jobs_rejected_total", "Jobs refused (queue full or draining).", m.JobsRejected.Load())
	counter("hmcd_jobs_completed_total", "Explorations that produced a result.", m.JobsCompleted.Load())
	counter("hmcd_jobs_failed_total", "Explorations that returned an error.", m.JobsFailed.Load())
	counter("hmcd_jobs_canceled_total", "Jobs canceled by the client.", m.JobsCanceled.Load())
	counter("hmcd_jobs_interrupted_total", "Jobs stopped by a deadline with partial results.", m.JobsInterrupted.Load())
	counter("hmcd_vet_findings_total", "Static-analysis findings attached to accepted submissions.", m.VetFindings.Load())
	counter("hmcd_engine_errors_total", "Engine panics contained as structured errors.", m.EngineErrors.Load())
	counter("hmcd_crash_artifacts_total", "Crash repro artifacts written.", m.CrashArtifacts.Load())
	counter("hmcd_jobs_retried_total", "Job re-runs after a transient memory-budget truncation.", m.JobsRetried.Load())
	counter("hmcd_breaker_rejected_total", "Submissions refused by the per-program circuit breaker.", m.BreakerRejected.Load())
	counter("hmcd_backend_runs_total", "Portfolio backend runs launched in verdict races.", m.BackendRuns.Load())
	counter("hmcd_backend_wins_total", "Portfolio races won (first exhaustive verdict).", m.BackendWins.Load())
	counter("hmcd_backend_timeouts_total", "Portfolio backend runs cut off by deadline or grace cancellation.", m.BackendTimeouts.Load())
	counter("hmcd_backend_disagreements_total", "Confirmed cross-backend verdict disagreements.", m.BackendDisagreements.Load())
	counter("hmcd_jobs_quarantined_total", "Jobs failed with a quarantined cross-backend disagreement.", m.JobsQuarantined.Load())
	counter("hmcd_quarantine_artifacts_total", "Disagreement repro artifacts written.", m.QuarantineArtifacts.Load())
	m.writeBackendLatencies(w)
	gaugeI("hmcd_shards_active", "Shard legs currently running across all sharded jobs.", m.ShardsActive.Load())
	counter("hmcd_shard_steals_total", "Work-steals completed (frontier buckets moved to an idle shard).", m.ShardSteals.Load())
	counter("hmcd_shard_retries_total", "Shard legs re-run after a worker death or peer failure.", m.ShardRetries.Load())
	gaugeI("hmcd_shard_legs_active", "Peer shard legs currently executing for remote coordinators.", m.ShardLegsActive.Load())
	counter("hmcd_shard_legs_served_total", "Peer shard legs served through /v1/shards.", m.ShardLegsServed.Load())
	counter("hmcd_peer_probe_failures_total", "Failed active /readyz probes against peers.", m.PeerProbeFailures.Load())
	counter("hmcd_peer_transient_retries_total", "Peer legs retried after a transient transport error.", m.PeerTransientRetries.Load())
	counter("hmcd_shard_leg_hedges_total", "Straggling peer legs hedged with a local copy.", m.ShardLegHedges.Load())
	counter("hmcd_peer_demotions_total", "Peer legs demoted to local execution.", m.PeerDemotions.Load())
	counter("hmcd_journal_write_errors_total", "Journal write or fsync failures survived in degraded mode.", m.JournalWriteErrors.Load())
	if len(peers) > 0 {
		fmt.Fprintf(w, "# HELP hmcd_peer_healthy 1 while the peer answers its /readyz probes.\n# TYPE hmcd_peer_healthy gauge\n")
		for _, p := range peers {
			v := 0
			if p.Healthy {
				v = 1
			}
			fmt.Fprintf(w, "hmcd_peer_healthy{peer=%q} %d\n", p.Peer, v)
		}
		fmt.Fprintf(w, "# HELP hmcd_peer_breaker_open 1 while the peer's circuit breaker is open.\n# TYPE hmcd_peer_breaker_open gauge\n")
		for _, p := range peers {
			v := 0
			if p.BreakerOpen {
				v = 1
			}
			fmt.Fprintf(w, "hmcd_peer_breaker_open{peer=%q} %d\n", p.Peer, v)
		}
	}
	counter("hmcd_journal_replayed_jobs_total", "Incomplete jobs re-enqueued from the journal on startup.", m.JournalReplayedJobs.Load())
	counter("hmcd_journal_checkpoints_total", "Periodic exploration checkpoints journaled.", m.JournalCheckpoints.Load())
	counter("hmcd_journal_skipped_records_total", "Torn or wrong-schema journal records dropped on replay.", m.JournalSkippedRecords.Load())
	counter("hmcd_resume_saved_execs_total", "Executions restored from checkpoints instead of re-explored.", m.ResumeSavedExecs.Load())
	counter("hmcd_verdicts_reloaded_total", "Verdict cache entries restored from disk on startup.", m.VerdictsReloaded.Load())
	readyV := int64(0)
	if ready {
		readyV = 1
	}
	gaugeI("hmcd_ready", "1 once journal replay has finished and the service accepts work.", readyV)
	gaugeI("hmcd_crash_artifacts_resident", "Crash artifacts currently on disk.", int64(crashResident))
	counter("hmcd_cache_hits_total", "Verdict cache hits.", m.CacheHits.Load())
	counter("hmcd_cache_misses_total", "Verdict cache misses.", m.CacheMisses.Load())
	gaugeF("hmcd_cache_hit_rate", "Verdict cache hit rate since start.", m.CacheHitRate())
	gaugeI("hmcd_cache_entries", "Verdict cache entries resident.", int64(cacheEntries))
	gaugeI("hmcd_cache_capacity", "Verdict cache entry bound.", int64(cacheCap))
	counter("hmcd_cache_evictions_total", "Verdict cache entries dropped by LRU pressure.", m.CacheEvictions.Load())
	counter("hmcd_http_encode_errors_total", "JSON responses whose encoding failed (500 fallback served).", m.HTTPEncodeErrors.Load())
	gaugeI("hmcd_queue_depth", "Jobs waiting in the queue.", int64(queueDepth))
	gaugeI("hmcd_jobs_inflight", "Explorations currently running.", m.InFlight.Load())
	counter("hmcd_executions_total", "Complete consistent executions explored.", m.Executions.Load())
	counter("hmcd_exists_total", "Executions satisfying their Exists clause.", m.ExistsCount.Load())
	counter("hmcd_blocked_total", "Maximal blocked executions.", m.Blocked.Load())
	counter("hmcd_states_total", "Distinct exploration states visited.", m.States.Load())
	counter("hmcd_memo_hits_total", "States pruned by the exploration memo.", m.MemoHits.Load())
	counter("hmcd_revisits_tried_total", "Backward revisit candidates considered.", m.RevisitsTried.Load())
	counter("hmcd_revisits_taken_total", "Backward revisits taken.", m.RevisitsTaken.Load())
	counter("hmcd_consistency_checks_total", "Memory-model consistency checks.", m.ConsistencyChecks.Load())
	counterF("hmcd_phase_interp_seconds_total", "Sampled interpretation time across finished jobs.",
		time.Duration(m.PhaseInterpNS.Load()).Seconds())
	counterF("hmcd_phase_consistency_seconds_total", "Sampled consistency-check time across finished jobs.",
		time.Duration(m.PhaseConsistencyNS.Load()).Seconds())
	counterF("hmcd_phase_revisit_seconds_total", "Sampled revisit-machinery time across finished jobs.",
		time.Duration(m.PhaseRevisitNS.Load()).Seconds())
	m.JobExecRate.write(w, "hmcd_job_exec_rate", "Overall executions/sec of each finished job.")
	m.WaveSize.write(w, "hmcd_wave_size", "Frontier width at each progress snapshot.")
	m.ConsistencyCheckSeconds.write(w, "hmcd_consistency_check_seconds", "Mean consistency-check latency of each finished job.")
}

// writeBackendLatencies renders the per-backend latency distributions as
// one labeled histogram family, backends in sorted order so the exposition
// is deterministic.
func (m *Metrics) writeBackendLatencies(w io.Writer) {
	m.backendLatMu.Lock()
	defer m.backendLatMu.Unlock()
	if len(m.backendLat) == 0 {
		return
	}
	names := make([]string, 0, len(m.backendLat))
	for name := range m.backendLat {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP hmcd_backend_latency_seconds Per-backend portfolio run latency.\n# TYPE hmcd_backend_latency_seconds histogram\n")
	for _, name := range names {
		m.backendLat[name].writeLabeled(w, "hmcd_backend_latency_seconds", fmt.Sprintf("backend=%q", name))
	}
}

// addStats folds one finished exploration's counters into the totals.
func (m *Metrics) addStats(s *core.Stats) {
	m.Executions.Add(int64(s.Executions))
	m.ExistsCount.Add(int64(s.ExistsCount))
	m.Blocked.Add(int64(s.Blocked))
	m.States.Add(int64(s.States))
	m.MemoHits.Add(int64(s.MemoHits))
	m.RevisitsTried.Add(int64(s.RevisitsTried))
	m.RevisitsTaken.Add(int64(s.RevisitsTaken))
	m.ConsistencyChecks.Add(int64(s.ConsistencyChecks))
}
