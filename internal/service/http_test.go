package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hmc"
	"hmc/internal/service"
)

// wireJob mirrors the handler's job JSON.
type wireJob struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Program  string `json:"program"`
	Model    string `json:"model"`
	CacheHit bool   `json:"cache_hit"`
	Error    string `json:"error"`
	Result   *struct {
		Executions  int  `json:"executions"`
		ExistsCount int  `json:"exists_count"`
		Allowed     bool `json:"allowed"`
		Blocked     int  `json:"blocked"`
		States      int  `json:"states"`
		Truncated   bool `json:"truncated"`
		Interrupted bool `json:"interrupted"`
		Exhaustive  bool `json:"exhaustive"`
	} `json:"result"`
}

func startServer(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, wireJob) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j wireJob
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatalf("bad job JSON (%s): %v", raw, err)
	}
	return resp.StatusCode, j
}

func pollJob(t *testing.T, ts *httptest.Server, id string) wireJob {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j wireJob
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch j.State {
		case "done", "failed", "canceled":
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return wireJob{}
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// metricValue extracts one sample from Prometheus exposition text.
func metricValue(t *testing.T, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s missing from:\n%s", name, text)
	return ""
}

// TestHTTPVerdictMatchesCheckAndCacheHit is the first acceptance test:
// submit a corpus litmus test over HTTP, poll to completion, assert the
// verdict matches hmc.Check, re-submit and observe the cache hit both in
// the job record and on /metrics.
func TestHTTPVerdictMatchesCheckAndCacheHit(t *testing.T) {
	_, ts := startServer(t, service.Config{Workers: 2})

	status, job := postJob(t, ts, `{"test": "MP", "model": "imm"}`)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit status %d", status)
	}
	job = pollJob(t, ts, job.ID)
	if job.State != "done" || job.Result == nil {
		t.Fatalf("job did not complete: %+v", job)
	}

	mp, err := hmc.ParseLitmus(`
name MP
T0: W x 1 ; W y 1
T1: r0 = R y ; r1 = R x
exists T1:r0=1 & T1:r1=0
`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hmc.Check(mp, "imm")
	if err != nil {
		t.Fatal(err)
	}
	if job.Result.Executions != want.Executions {
		t.Errorf("executions %d over HTTP vs %d from hmc.Check", job.Result.Executions, want.Executions)
	}
	if job.Result.Allowed != (want.ExistsCount > 0) {
		t.Errorf("allowed %v over HTTP vs %v from hmc.Check", job.Result.Allowed, want.ExistsCount > 0)
	}
	if !job.Result.Exhaustive {
		t.Error("small unbounded job must be exhaustive")
	}

	// Resubmit: must be served from cache, visible on /metrics.
	status, again := postJob(t, ts, `{"test": "MP", "model": "imm"}`)
	if status != http.StatusOK || !again.CacheHit || again.State != "done" {
		t.Fatalf("resubmission not served from cache: status %d %+v", status, again)
	}
	if again.Result.Executions != job.Result.Executions {
		t.Error("cached executions diverge")
	}
	code, metrics := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if got := metricValue(t, metrics, "hmcd_cache_hits_total"); got != "1" {
		t.Errorf("hmcd_cache_hits_total = %s, want 1", got)
	}
	if got := metricValue(t, metrics, "hmcd_jobs_completed_total"); got != "1" {
		t.Errorf("hmcd_jobs_completed_total = %s, want 1 (cache hit must not re-explore)", got)
	}
}

// counterSource builds a large gen-style litmus workload: n threads each
// performing k atomic increments — the inc(n,k) stress family in the
// text format the service accepts.
func counterSource(n, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name inc(%dx%d)\n", n, k)
	for t := 0; t < n; t++ {
		fmt.Fprintf(&b, "T%d:", t)
		for i := 0; i < k; i++ {
			if i > 0 {
				b.WriteString(" ;")
			}
			fmt.Fprintf(&b, " r%d = FADD c 1", i)
		}
		b.WriteString("\n")
	}
	b.WriteString("exists c=1\n")
	return b.String()
}

// TestHTTPDeadlineInterruptsLargeJob is the second acceptance test: a
// large generated workload with a short deadline must come back
// interrupted with partial stats, and the daemon must stay healthy.
func TestHTTPDeadlineInterruptsLargeJob(t *testing.T) {
	_, ts := startServer(t, service.Config{Workers: 1})

	body, _ := json.Marshal(map[string]any{
		"source":     counterSource(4, 3),
		"model":      "sc",
		"timeout_ms": 25,
	})
	status, job := postJob(t, ts, string(bytes.TrimSpace(body)))
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	job = pollJob(t, ts, job.ID)
	if job.State != "done" || job.Result == nil {
		t.Fatalf("deadline job must still complete with a partial result: %+v", job)
	}
	if !job.Result.Interrupted {
		t.Fatal("result must be marked interrupted")
	}
	if job.Result.Exhaustive {
		t.Fatal("interrupted job must not claim an exhaustive verdict")
	}
	if job.Result.States == 0 {
		t.Error("25ms of exploration should have visited some states")
	}

	// The daemon is still healthy and serves fresh work afterwards.
	code, health := getBody(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(health, `"ok"`) {
		t.Fatalf("daemon unhealthy after interrupted job: %d %s", code, health)
	}
	_, small := postJob(t, ts, `{"test": "SB", "model": "tso"}`)
	small = pollJob(t, ts, small.ID)
	if small.State != "done" || small.Result == nil || !small.Result.Exhaustive {
		t.Fatalf("follow-up job must run to an exhaustive verdict: %+v", small)
	}
	code, metrics := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if got := metricValue(t, metrics, "hmcd_jobs_interrupted_total"); got != "1" {
		t.Errorf("hmcd_jobs_interrupted_total = %s, want 1", got)
	}
}

func TestHTTPCancelRunningJob(t *testing.T) {
	_, ts := startServer(t, service.Config{Workers: 1})

	body, _ := json.Marshal(map[string]string{"source": counterSource(4, 3), "model": "sc"})
	_, job := postJob(t, ts, string(body))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	job = pollJob(t, ts, job.ID)
	if job.State != "canceled" {
		t.Fatalf("state %s, want canceled", job.State)
	}
}

func TestHTTPSubmitErrors(t *testing.T) {
	_, ts := startServer(t, service.Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"prgoram": "x"}`},
		{"no program", `{"model": "sc"}`},
		{"both source and test", `{"source": "T0: W x 1", "test": "SB"}`},
		{"unknown test", `{"test": "definitely-not-a-test"}`},
		{"unknown model", `{"test": "SB", "model": "weird"}`},
		{"parse error", `{"source": "T0: FROB x 1"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, raw)
		}
		if !strings.Contains(string(raw), "error") {
			t.Errorf("%s: error body missing: %s", tc.name, raw)
		}
	}

	if code, _ := getBody(t, ts, "/v1/jobs/no-such-job"); code != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", code)
	}
}

func TestHTTPModelsAndTests(t *testing.T) {
	_, ts := startServer(t, service.Config{Workers: 1})
	code, models := getBody(t, ts, "/v1/models")
	if code != http.StatusOK || !strings.Contains(models, `"imm"`) || !strings.Contains(models, `"tso"`) {
		t.Errorf("/v1/models: %d %s", code, models)
	}
	code, tests := getBody(t, ts, "/v1/tests")
	if code != http.StatusOK || !strings.Contains(tests, `"IRIW"`) {
		t.Errorf("/v1/tests: %d %s", code, tests)
	}
	code, list := getBody(t, ts, "/v1/jobs")
	if code != http.StatusOK || !strings.Contains(list, `"jobs"`) {
		t.Errorf("/v1/jobs: %d %s", code, list)
	}
}
