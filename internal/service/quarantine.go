package service

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hmc/internal/backend"
	"hmc/internal/core"
	"hmc/internal/prog"
)

// quarantineKind tags disagreement artifacts (the Kind field and the file
// name prefix) so `hmc -repro` can tell them apart from crash artifacts.
const quarantineKind = "backend-disagreement"

// QuarantineArtifact is a self-contained repro of a cross-backend
// disagreement: two engines both claimed exhaustive coverage of the same
// program under the same model and returned conflicting verdicts. The
// artifact carries the program (replayable exactly like a CrashArtifact),
// both verdicts, the diff, and the full attestation trail; `hmc -repro`
// re-runs both backends from it.
type QuarantineArtifact struct {
	// Schema gates replay exactly like CrashArtifact.Schema: a
	// disagreement from another engine schema is not reproducible here.
	Schema int    `json:"schema"`
	Kind   string `json:"kind"` // always quarantineKind

	JobID       string    `json:"job_id"`
	Time        time.Time `json:"time"`
	Program     string    `json:"program"`
	Fingerprint string    `json:"fingerprint"`
	Model       string    `json:"model"`

	// Exactly one of Source/Test is set when the submission carried one;
	// ProgramDump is always set (human-readable, not machine-replayable).
	Source      string `json:"source,omitempty"`
	Test        string `json:"test,omitempty"`
	ProgramDump string `json:"program_dump"`

	// Diff names the first divergence; Winner and Dissenter are the two
	// complete verdicts; Attempts is every backend's part in the race.
	Diff      string            `json:"diff"`
	Winner    *backend.Verdict  `json:"winner"`
	Dissenter *backend.Verdict  `json:"dissenter"`
	Attempts  []backend.Attempt `json:"attempts"`
}

// BuildProgram reconstructs the disputed program for replay, from the
// litmus source or the named corpus test.
func (a *QuarantineArtifact) BuildProgram() (*prog.Program, error) {
	c := CrashArtifact{Source: a.Source, Test: a.Test}
	return c.BuildProgram()
}

// LoadQuarantineArtifact reads one disagreement artifact written by the
// service, rejecting files of the wrong kind or engine schema.
func LoadQuarantineArtifact(path string) (*QuarantineArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &QuarantineArtifact{}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, fmt.Errorf("quarantine artifact %s: %w", path, err)
	}
	if a.Kind != quarantineKind {
		return nil, fmt.Errorf("quarantine artifact %s: kind %q, want %q", path, a.Kind, quarantineKind)
	}
	if a.Schema != core.SchemaVersion {
		return nil, fmt.Errorf("quarantine artifact %s: engine schema %d, this binary is %d — not replayable",
			path, a.Schema, core.SchemaVersion)
	}
	return a, nil
}

// IsQuarantineArtifact sniffs whether the file at path is a disagreement
// artifact (vs. a crash artifact) without fully decoding it — the
// dispatch behind `hmc -repro`.
func IsQuarantineArtifact(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var peek struct {
		Kind string `json:"kind"`
	}
	return json.Unmarshal(data, &peek) == nil && peek.Kind == quarantineKind
}

// buildQuarantine assembles the disagreement repro for a quarantined job.
func (s *Service) buildQuarantine(j *Job, out *backend.Outcome) *QuarantineArtifact {
	d := out.Disagreement
	return &QuarantineArtifact{
		Schema:      core.SchemaVersion,
		Kind:        quarantineKind,
		JobID:       j.id,
		Time:        time.Now().UTC(),
		Program:     j.req.Program.Name,
		Fingerprint: j.fingerprint,
		Model:       j.req.Model,
		Source:      j.req.Source,
		Test:        j.req.Test,
		ProgramDump: j.req.Program.String(),
		Diff:        d.Diff,
		Winner:      d.Winner,
		Dissenter:   d.Dissenter,
		Attempts:    out.Attempts,
	}
}
