// Package service turns the one-shot explorer in internal/core into a
// long-running, multi-tenant model-checking service: a bounded job queue
// drained by a pool of workers, per-job deadlines and client cancellation
// (via the explorer's Options.Context support), a content-addressed LRU
// verdict cache so repeat submissions of an already-verified program are
// answered without re-exploration, and Prometheus-style metrics. The HTTP
// surface over it lives in http.go; cmd/hmcd is the thin binary shell.
//
// Concurrency model: one goroutine per configured worker ranges over the
// queue channel; each job gets its own context (deadline and/or client
// cancel) threaded into core.Explore, so a stuck or oversized exploration
// cannot wedge a worker past its deadline. Job records live in a map
// guarded by one mutex — every exploration datum lives in the explorer's
// own shared state, so the service lock is only touched at job
// transitions, never per-event. Shutdown closes the queue, lets queued
// jobs drain, and hard-cancels in-flight work only when the caller's
// drain context expires.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hmc/internal/core"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// QueueSize bounds the number of jobs waiting to run (default 64).
	// A full queue rejects submissions with ErrQueueFull — backpressure,
	// not unbounded buffering.
	QueueSize int
	// Workers is the number of jobs explored concurrently (default 2).
	Workers int
	// CacheSize is the verdict cache capacity in entries (default 128;
	// negative disables caching).
	CacheSize int
	// DefaultTimeout applies to jobs submitted without a deadline
	// (default none: such jobs run to exhaustion).
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested deadline (default none).
	MaxTimeout time.Duration
	// JobHistory bounds the finished-job records retained for polling
	// (default 1024); the oldest finished jobs are forgotten first.
	JobHistory int
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	return c
}

// JobState is the lifecycle of a job: queued → running → one of
// done/failed/canceled. Cache hits are born done.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// SubmitRequest describes one checking job.
type SubmitRequest struct {
	// Program is the test case to check (required).
	Program *prog.Program
	// Model names the memory model (required; see memmodel.Names).
	Model string
	// MaxExecutions, Workers, Symmetry mirror core.Options.
	MaxExecutions int
	Workers       int
	Symmetry      bool
	// Timeout is the job's wall-clock budget (0: Config.DefaultTimeout).
	// A job that exceeds it completes with a partial, Interrupted result.
	Timeout time.Duration
}

// Submission errors.
var (
	ErrQueueFull = errors.New("service: job queue is full")
	ErrDraining  = errors.New("service: shutting down, not accepting jobs")
)

// Job is the internal job record; the exported snapshot type is JobView.
type Job struct {
	id          string
	state       JobState
	req         SubmitRequest
	model       memmodel.Model
	fingerprint string
	cacheKey    string
	cacheHit    bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
	result      *core.Result
	errMsg      string
	cancel      context.CancelFunc // non-nil only while running
	userCancel  bool               // Cancel() was called
}

// JobView is an immutable snapshot of a job, safe to hold across the
// service lock. Result is shared (it is never mutated after completion).
type JobView struct {
	ID          string
	State       JobState
	Program     string
	Fingerprint string
	Model       string
	ExistsDesc  string
	CacheHit    bool
	Submitted   time.Time
	Started     time.Time
	Finished    time.Time
	Err         string
	Result      *core.Result
}

func (j *Job) view() JobView {
	return JobView{
		ID:          j.id,
		State:       j.state,
		Program:     j.req.Program.Name,
		Fingerprint: j.fingerprint,
		Model:       j.req.Model,
		ExistsDesc:  j.req.Program.ExistsDesc,
		CacheHit:    j.cacheHit,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
		Err:         j.errMsg,
		Result:      j.result,
	}
}

// Service is a running model-checking daemon core.
type Service struct {
	cfg     Config
	cache   *verdictCache
	metrics Metrics

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // finished job ids, oldest first (history eviction)
	queue    chan *Job
	draining bool
	nextID   int

	wg sync.WaitGroup // worker goroutines
}

// New starts a service with cfg's worker pool already draining the queue.
// Call Shutdown to stop it.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		cache: newVerdictCache(cfg.CacheSize),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueSize),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// Metrics exposes the counters (for tests and embedding servers).
func (s *Service) Metrics() *Metrics { return &s.metrics }

// Config returns the effective configuration — cfg as passed to New with
// defaults applied (what the service actually runs with).
func (s *Service) Config() Config { return s.cfg }

// QueueDepth reports the jobs currently waiting.
func (s *Service) QueueDepth() int { return len(s.queue) }

// cacheKey builds the verdict-cache key: everything that determines the
// result, nothing that only determines how fast it is computed (Workers)
// or what a client called the program (the fingerprint ignores names).
func cacheKey(fp string, req SubmitRequest) string {
	return fmt.Sprintf("%s|%s|max=%d|symm=%v", fp, req.Model, req.MaxExecutions, req.Symmetry)
}

// Submit validates req, answers it from the verdict cache when possible,
// and otherwise enqueues it. It returns the job snapshot — immediately
// terminal on a cache hit — or ErrQueueFull/ErrDraining under pressure.
func (s *Service) Submit(req SubmitRequest) (JobView, error) {
	if req.Program == nil {
		return JobView{}, errors.New("service: request has no program")
	}
	model, err := memmodel.ByName(req.Model)
	if err != nil {
		return JobView{}, err
	}
	if err := req.Program.Validate(); err != nil {
		return JobView{}, err
	}
	if req.Timeout <= 0 {
		req.Timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (req.Timeout <= 0 || req.Timeout > s.cfg.MaxTimeout) {
		req.Timeout = s.cfg.MaxTimeout
	}
	fp := req.Program.Fingerprint()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.metrics.JobsRejected.Add(1)
		return JobView{}, ErrDraining
	}
	s.nextID++
	j := &Job{
		id:          fmt.Sprintf("job-%06d", s.nextID),
		state:       StateQueued,
		req:         req,
		model:       model,
		fingerprint: fp,
		cacheKey:    cacheKey(fp, req),
		submitted:   time.Now(),
	}
	s.metrics.JobsSubmitted.Add(1)
	if res, ok := s.cache.get(j.cacheKey); ok {
		s.metrics.CacheHits.Add(1)
		j.state = StateDone
		j.cacheHit = true
		j.result = res
		j.finished = j.submitted
		s.jobs[j.id] = j
		s.recordFinishedLocked(j)
		return j.view(), nil
	}
	s.metrics.CacheMisses.Add(1)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		return j.view(), nil
	default:
		s.metrics.JobsRejected.Add(1)
		return JobView{}, ErrQueueFull
	}
}

// Get returns a snapshot of the job with the given id.
func (s *Service) Get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs snapshots every retained job, newest first.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	for i, k := 0, len(views)-1; i < k; i, k = i+1, k-1 {
		views[i], views[k] = views[k], views[i]
	}
	return views
}

// Cancel asks the job to stop: a queued job is marked canceled and will
// be skipped when dequeued; a running job's context is cancelled and its
// partial result retained. Terminal jobs are left alone (reported false).
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.state.Terminal() {
		return false
	}
	j.userCancel = true
	if j.state == StateQueued {
		j.state = StateCanceled
		j.finished = time.Now()
		s.metrics.JobsCanceled.Add(1)
		s.recordFinishedLocked(j)
		return true
	}
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// runJob explores one dequeued job with its own deadline context.
func (s *Service) runJob(j *Job) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if j.req.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.req.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	s.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	s.mu.Unlock()

	s.metrics.InFlight.Add(1)
	res, err := core.Explore(j.req.Program, core.Options{
		Model:         j.model,
		Context:       ctx,
		MaxExecutions: j.req.MaxExecutions,
		Workers:       j.req.Workers,
		Symmetry:      j.req.Symmetry,
	})
	s.metrics.InFlight.Add(-1)

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	j.finished = time.Now()
	switch {
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.metrics.JobsFailed.Add(1)
	case j.userCancel:
		j.state = StateCanceled
		j.result = res
		s.metrics.JobsCanceled.Add(1)
		s.metrics.addStats(&res.Stats)
	default:
		j.state = StateDone
		j.result = res
		s.metrics.JobsCompleted.Add(1)
		s.metrics.addStats(&res.Stats)
		if res.Interrupted {
			s.metrics.JobsInterrupted.Add(1)
		} else {
			// Truncated results are keyed by their MaxExecutions, so any
			// non-interrupted result is deterministic and cacheable.
			s.cache.put(j.cacheKey, res)
		}
	}
	s.recordFinishedLocked(j)
}

// recordFinishedLocked appends j to the finished history and evicts the
// oldest finished job records beyond the configured retention. Callers
// hold s.mu.
func (s *Service) recordFinishedLocked(j *Job) {
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.JobHistory {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Shutdown stops accepting jobs, waits for the queue to drain and the
// workers to finish. If ctx expires first, every queued and running job
// is cancelled (their partial results remain pollable) and Shutdown
// returns ctx.Err after the workers exit.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateQueued {
				j.state = StateCanceled
				j.userCancel = true
				j.finished = time.Now()
				s.metrics.JobsCanceled.Add(1)
				s.recordFinishedLocked(j)
			} else if j.cancel != nil {
				j.userCancel = true
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
