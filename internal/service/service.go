// Package service turns the one-shot explorer in internal/core into a
// long-running, multi-tenant model-checking service: a bounded job queue
// drained by a pool of workers, per-job deadlines and client cancellation
// (via the explorer's Options.Context support), a content-addressed LRU
// verdict cache so repeat submissions of an already-verified program are
// answered without re-exploration, and Prometheus-style metrics. The HTTP
// surface over it lives in http.go; cmd/hmcd is the thin binary shell.
//
// Concurrency model: one goroutine per configured worker ranges over the
// queue channel; each job gets its own context (deadline and/or client
// cancel) threaded into core.Explore, so a stuck or oversized exploration
// cannot wedge a worker past its deadline. Job records live in a map
// guarded by one mutex — every exploration datum lives in the explorer's
// own shared state, so the service lock is only touched at job
// transitions, never per-event. Shutdown closes the queue, lets queued
// jobs drain, and hard-cancels in-flight work only when the caller's
// drain context expires.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hmc/internal/analyze"
	"hmc/internal/backend"
	"hmc/internal/core"
	"hmc/internal/faultinject"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/obs"
	"hmc/internal/prog"
	"hmc/internal/shard"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// QueueSize bounds the number of jobs waiting to run (default 64).
	// A full queue rejects submissions with ErrQueueFull — backpressure,
	// not unbounded buffering.
	QueueSize int
	// Workers is the number of jobs explored concurrently (default 2).
	Workers int
	// CacheSize is the verdict cache capacity in entries (default 128;
	// negative disables caching).
	CacheSize int
	// DefaultTimeout applies to jobs submitted without a deadline
	// (default none: such jobs run to exhaustion).
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested deadline (default none).
	MaxTimeout time.Duration
	// JobHistory bounds the finished-job records retained for polling
	// (default 1024); the oldest finished jobs are forgotten first.
	JobHistory int
	// CrashDir is where engine-crash artifacts are written (default
	// "hmcd-crashes" under the working directory). Empty string is the
	// default; set MaxCrashArtifacts negative to disable capture.
	CrashDir string
	// MaxCrashArtifacts bounds the crash directory (default 32, oldest
	// evicted first; negative disables artifact capture entirely).
	MaxCrashArtifacts int
	// MaxAttempts is how many times a job whose exploration was cut short
	// by the memory budget — a transient, machine-state-dependent
	// condition, unlike the deterministic execution/event caps — is run
	// before its partial result is accepted (default 2).
	MaxAttempts int
	// RetryBackoff is the pause before each retry attempt (default 50ms).
	RetryBackoff time.Duration
	// BreakerThreshold trips the per-fingerprint circuit breaker: after
	// this many engine crashes on one program content, submissions of that
	// fingerprint are rejected with ErrCircuitOpen until BreakerCooldown
	// has passed (default 3; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped fingerprint stays rejected
	// after its last crash (default 10m).
	BreakerCooldown time.Duration
	// JournalDir, when set, makes the service durable: accepted jobs,
	// periodic exploration checkpoints and terminal transitions are
	// written to a fsynced write-ahead journal there, and the verdict
	// cache is persisted to verdicts.json alongside it. On startup the
	// journal is replayed — jobs that were queued or running when the
	// process died are re-enqueued, resuming from their last checkpoint.
	// Empty disables durability (the previous, in-memory-only behavior).
	JournalDir string
	// JournalMaxBytes rotates the journal file past this size; each fresh
	// file starts with a compaction snapshot of the incomplete jobs
	// (default 4 MiB).
	JournalMaxBytes int64
	// CheckpointEveryExecs is how often a running exploration drains into
	// a journal checkpoint, in executions (default 2000; only meaningful
	// with JournalDir). Smaller loses less work to a crash; larger
	// checkpoints less often. See experiment T14 for the overhead curve.
	CheckpointEveryExecs int
	// ProgressEvery is how often a running job publishes a progress
	// snapshot — served live in job polls, the /progress long-poll and the
	// histograms (default 1s; negative disables progress entirely).
	// Snapshots ride the explorer's drain barrier, so the overhead is one
	// wave pause per cadence (EXPERIMENTS.md T15 bounds it at <5%).
	ProgressEvery time.Duration
	// Peers are base URLs of peer hmcd daemons (e.g. "http://host:8433")
	// that sharded jobs may farm legs to through POST /v1/shards. Shard 0
	// always runs locally; further shards round-robin over local + peers.
	// Empty means sharded jobs run all their legs in-process. Peer legs
	// run through a resilience pool: active /readyz probes, per-peer
	// circuit breakers, bounded transient retries, optional hedging, and
	// local demotion as the last rung — a dark peer never loses a leg.
	Peers []string
	// PeerProbeEvery is the cadence of active /readyz probes against each
	// peer (default 5s; negative disables active probing — peers are then
	// judged passively from leg outcomes).
	PeerProbeEvery time.Duration
	// PeerTimeout, when >0, is the per-attempt deadline for one peer leg;
	// an overrun counts as a transient failure (retried, then demoted).
	PeerTimeout time.Duration
	// PeerHedgeAfter, when >0, races a local copy of any peer leg still
	// unfinished after this long; the first finisher wins and the loser is
	// cancelled. Totals stay byte-identical either way.
	PeerHedgeAfter time.Duration
	// ChaosPlan, when non-nil, threads a deterministic fault-injection
	// plan (internal/faultinject) through the peer HTTP transport and the
	// journal file — the dev-only harness behind `hmcd -chaos-plan`. Never
	// set in production.
	ChaosPlan *faultinject.Plan
	// Portfolio races every applicable backend (internal/backend) on each
	// unsharded, non-resumed job and cross-attests the verdicts. The DFS
	// anchor still produces the served result — behavior is identical to
	// the single-engine path — but a confirmed disagreement quarantines
	// the job instead of serving either answer.
	Portfolio bool
	// PortfolioBackendTimeout is the per-run deadline for the non-anchor
	// backends (default 30s; the anchor is bounded only by the job).
	PortfolioBackendTimeout time.Duration
	// PortfolioGrace bounds how long losing backends keep cross-checking
	// after a win (0 = backend.DefaultGrace; negative cancels immediately).
	PortfolioGrace time.Duration
	// QuarantineDir is where disagreement artifacts are written (default
	// "hmcd-quarantine"); MaxQuarantineArtifacts bounds the directory
	// (default 32, oldest evicted; negative disables capture).
	QuarantineDir          string
	MaxQuarantineArtifacts int
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	if c.CrashDir == "" {
		c.CrashDir = "hmcd-crashes"
	}
	if c.MaxCrashArtifacts == 0 {
		c.MaxCrashArtifacts = 32
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Minute
	}
	if c.JournalMaxBytes <= 0 {
		c.JournalMaxBytes = defaultJournalMaxBytes
	}
	if c.CheckpointEveryExecs <= 0 {
		c.CheckpointEveryExecs = 2000
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = core.DefaultProgressEvery
	}
	if c.PortfolioBackendTimeout == 0 {
		c.PortfolioBackendTimeout = 30 * time.Second
	}
	if c.QuarantineDir == "" {
		c.QuarantineDir = "hmcd-quarantine"
	}
	if c.MaxQuarantineArtifacts == 0 {
		c.MaxQuarantineArtifacts = 32
	}
	return c
}

// JobState is the lifecycle of a job: queued → running → one of
// done/failed/canceled/quarantined. Cache hits are born done.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
	// StateQuarantined is the distinct failure of a portfolio job whose
	// backends disagreed: no verdict is served or cached, and the
	// disagreement artifact holds both answers for replay.
	StateQuarantined JobState = "quarantined"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateQuarantined
}

// SubmitRequest describes one checking job.
type SubmitRequest struct {
	// Program is the test case to check (required).
	Program *prog.Program
	// Model names the memory model (required; see memmodel.Names).
	Model string
	// MaxExecutions, MaxEvents, MemoryBudget, Workers, Symmetry mirror
	// core.Options.
	MaxExecutions int
	MaxEvents     int
	MemoryBudget  int64
	Workers       int
	Symmetry      bool
	// Shards splits the exploration across this many explorers
	// (internal/shard) with work-stealing and exactly-once leg retries;
	// the merged totals are identical to a single-explorer run. 0 or 1 is
	// the legacy single-explorer path. Capped at MaxShards.
	Shards int
	// Timeout is the job's wall-clock budget (0: Config.DefaultTimeout).
	// A job that exceeds it completes with a partial, Interrupted result.
	Timeout time.Duration
	// Source/Test record how the program was submitted (litmus text or a
	// corpus test name); either makes a crash artifact replayable with
	// `hmc -repro`. Optional — library callers passing a built Program may
	// leave both empty, at the cost of dump-only artifacts.
	Source string
	Test   string
}

// Submission errors.
var (
	ErrQueueFull   = errors.New("service: job queue is full")
	ErrDraining    = errors.New("service: shutting down, not accepting jobs")
	ErrCircuitOpen = errors.New("service: circuit open: this program recently crashed the engine, retry after cooldown")
)

// Job is the internal job record; the exported snapshot type is JobView.
type Job struct {
	id          string
	state       JobState
	req         SubmitRequest
	model       memmodel.Model
	fingerprint string
	cacheKey    string
	cacheHit    bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
	result      *core.Result
	errMsg      string
	diagnostics []string
	attempts    int
	engineErr   *core.EngineError
	artifact    string // crash artifact path, when one was written

	// Portfolio attestation: the per-backend trail, the winning verdict
	// (published the moment it lands, before cross-checking completes)
	// and the disagreement artifact path when the job was quarantined.
	attestation []backend.Attempt
	winner      *backend.Verdict
	quarantine  string

	cancel     context.CancelFunc // non-nil only while running
	userCancel bool               // Cancel() was called
	resumeFrom *core.Checkpoint   // journal-replayed checkpoint to resume from
	resumed    bool               // this job continued a pre-restart exploration

	// progress is the job's latest exploration snapshot (nil until the
	// first one lands); progressCh, when non-nil, is closed to wake
	// long-poll waiters on each new snapshot and on the terminal
	// transition. progressSeq renumbers snapshots monotonically across
	// retry attempts (each attempt's explorer restarts its own Seq at 1,
	// which would strand long-poll clients holding a higher one). All are
	// guarded by the service mutex.
	progress    *obs.ProgressSnapshot
	progressSeq int
	progressCh  chan struct{}
}

// notifyProgressLocked wakes every waiter blocked on the job's progress.
// Callers hold s.mu.
func (j *Job) notifyProgressLocked() {
	if j.progressCh != nil {
		close(j.progressCh)
		j.progressCh = nil
	}
}

// JobView is an immutable snapshot of a job, safe to hold across the
// service lock. Result is shared (it is never mutated after completion).
type JobView struct {
	ID          string
	State       JobState
	Program     string
	Fingerprint string
	Model       string
	ExistsDesc  string
	CacheHit    bool
	Submitted   time.Time
	Started     time.Time
	Finished    time.Time
	Err         string
	Result      *core.Result
	// Diagnostics are the static-analysis findings (internal/analyze)
	// computed for the program at submission, rendered in the vet report
	// format. Purely advisory: findings never block a job.
	Diagnostics []string
	// Attempts counts exploration attempts (>1 after memory-budget
	// retries). EngineError carries the structured diagnostics of a
	// contained engine panic; CrashArtifact is the repro file's path.
	Attempts      int
	EngineError   *core.EngineError
	CrashArtifact string
	// Resumed marks a job that survived a daemon restart: it was replayed
	// from the journal and its exploration continued from the last
	// checkpoint instead of starting over.
	Resumed bool
	// Attestation is the portfolio's per-backend trail (nil on the
	// single-engine path); Winner is the first exhaustive verdict of the
	// race, published before cross-checking completes. QuarantineArtifact
	// is the disagreement repro's path when the job was quarantined.
	Attestation        []backend.Attempt
	Winner             *backend.Verdict
	QuarantineArtifact string
	// Progress is the job's latest exploration snapshot: live counters and
	// rates while running, the final (counters == Result) snapshot once
	// done. Nil before the first snapshot and for cache hits. The pointee
	// is never mutated after publication.
	Progress *obs.ProgressSnapshot
}

func (j *Job) view() JobView {
	return JobView{
		ID:            j.id,
		State:         j.state,
		Program:       j.req.Program.Name,
		Fingerprint:   j.fingerprint,
		Model:         j.req.Model,
		ExistsDesc:    j.req.Program.ExistsDesc,
		CacheHit:      j.cacheHit,
		Submitted:     j.submitted,
		Started:       j.started,
		Finished:      j.finished,
		Err:           j.errMsg,
		Result:        j.result,
		Diagnostics:   j.diagnostics,
		Attempts:      j.attempts,
		EngineError:   j.engineErr,
		CrashArtifact: j.artifact,
		Resumed:       j.resumed,
		Attestation:   j.attestation,
		Winner:        j.winner,

		QuarantineArtifact: j.quarantine,
		Progress:           j.progress,
	}
}

// Service is a running model-checking daemon core.
type Service struct {
	cfg     Config
	cache   *verdictCache
	metrics Metrics
	crashes *crashStore // nil when artifact capture is disabled
	journal *journal    // nil when Config.JournalDir is empty
	pool    *shard.Pool // nil when Config.Peers is empty

	// quarantines stores disagreement artifacts (nil when capture is
	// disabled); alternates are the non-anchor portfolio backends — nil
	// selects the standard pair, tests inject mocks here.
	quarantines *crashStore
	alternates  []backend.Backend

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // finished job ids, oldest first (history eviction)
	queue    chan *Job
	draining bool
	nextID   int
	breaker  *breaker

	crashMu   sync.Mutex // serializes artifact writes (held without s.mu)
	persistMu sync.Mutex // serializes verdict-file writes (held without s.mu)

	// ready flips once journal replay has re-enqueued every incomplete
	// job; /readyz gates on it so a load balancer does not route fresh
	// submissions to a daemon still rebuilding its backlog. killed is the
	// restart-test hook: all durable writes stop, as if SIGKILLed.
	ready   atomic.Bool
	killed  atomic.Bool
	drainCh chan struct{}  // closed when draining starts (unblocks replay)
	replay  sync.WaitGroup // the replay goroutine

	wg sync.WaitGroup // worker goroutines
}

// New starts a service with cfg's worker pool already draining the queue.
// With Config.JournalDir set it first replays the journal — re-enqueueing
// jobs that were incomplete when the previous process died, resuming each
// from its last checkpoint — and reloads the persisted verdict cache; the
// error return is for a journal directory that cannot be opened. Call
// Shutdown to stop the service.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		cache:   newVerdictCache(cfg.CacheSize),
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueSize),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		drainCh: make(chan struct{}),
	}
	s.cache.evictions = &s.metrics.CacheEvictions
	if cfg.MaxCrashArtifacts > 0 {
		s.crashes = &crashStore{dir: cfg.CrashDir, max: cfg.MaxCrashArtifacts}
	}
	if cfg.Portfolio && cfg.MaxQuarantineArtifacts > 0 {
		s.quarantines = &crashStore{dir: cfg.QuarantineDir, max: cfg.MaxQuarantineArtifacts}
	}
	if len(cfg.Peers) > 0 {
		pc := shard.PoolConfig{
			ProbeEvery: cfg.PeerProbeEvery,
			LegTimeout: cfg.PeerTimeout,
			HedgeAfter: cfg.PeerHedgeAfter,
			Observer: shard.PoolObserver{
				OnProbeFailure:   func() { s.metrics.PeerProbeFailures.Add(1) },
				OnTransientRetry: func() { s.metrics.PeerTransientRetries.Add(1) },
				OnHedge:          func() { s.metrics.ShardLegHedges.Add(1) },
				OnDemotion:       func() { s.metrics.PeerDemotions.Add(1) },
			},
		}
		if cfg.ChaosPlan != nil && cfg.ChaosPlan.HTTP != nil {
			pc.Client = &http.Client{Transport: faultinject.NewTransport(nil, cfg.ChaosPlan, nil)}
		}
		s.pool = shard.NewPool(cfg.Peers, pc)
		s.pool.Start()
	}
	var replay []*journalJob
	if cfg.JournalDir != "" {
		hooks := journalHooks{
			OnWriteError: func(error) { s.metrics.JournalWriteErrors.Add(1) },
		}
		if cfg.ChaosPlan != nil && cfg.ChaosPlan.Journal != nil {
			plan := cfg.ChaosPlan
			hooks.Wrap = func(f journalFile) journalFile { return faultinject.WrapFile(f, plan, nil) }
		}
		jl, stats, err := openJournalWith(cfg.JournalDir, cfg.JournalMaxBytes, hooks)
		if err != nil {
			return nil, fmt.Errorf("service: journal: %w", err)
		}
		s.journal = jl
		s.metrics.JournalSkippedRecords.Add(int64(stats.skipped + stats.wrongSchema))
		s.nextID = jl.maxLiveID()
		if cfg.CacheSize > 0 {
			s.metrics.VerdictsReloaded.Add(int64(loadVerdicts(cfg.JournalDir, s.cache)))
		}
		replay = jl.takeLive()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.safeRunJob(j)
			}
		}()
	}
	// Re-enqueue the journal backlog off the startup path: replay may
	// block on a full queue, and the workers started above are already
	// draining it. ready flips only after the whole backlog is queued.
	s.replay.Add(1)
	go func() {
		defer s.replay.Done()
		defer s.ready.Store(true)
		for _, jj := range replay {
			s.replayJob(jj)
		}
	}()
	return s, nil
}

// replayJob rebuilds one journaled job and re-enqueues it. A job whose
// program can no longer be rebuilt (corpus test renamed, source no longer
// parsing under this binary) is recorded as failed — and journaled done,
// so it is not replayed forever. A checkpoint that no longer decodes or
// matches is dropped: the job runs fresh rather than not at all.
func (s *Service) replayJob(jj *journalJob) {
	rec := jj.submit
	req := SubmitRequest{
		Model:         rec.Model,
		MaxExecutions: rec.MaxExecutions,
		MaxEvents:     rec.MaxEvents,
		MemoryBudget:  rec.MemoryBudget,
		Workers:       rec.Workers,
		Symmetry:      rec.Symmetry,
		Shards:        rec.Shards,
		Timeout:       time.Duration(rec.TimeoutMS) * time.Millisecond,
		Source:        rec.Source,
		Test:          rec.Test,
	}
	var buildErr error
	switch {
	case rec.Source != "":
		req.Program, buildErr = litmus.Parse(rec.Source)
	case rec.Test != "":
		tc, ok := litmus.ByName(rec.Test)
		if !ok {
			buildErr = fmt.Errorf("service: journal replay: unknown corpus test %q", rec.Test)
		} else {
			req.Program = tc.P
		}
	}
	var model memmodel.Model
	if buildErr == nil {
		model, buildErr = memmodel.ByName(rec.Model)
	}
	j := &Job{
		id:        rec.ID,
		state:     StateQueued,
		req:       req,
		model:     model,
		submitted: time.Now(),
	}
	if buildErr != nil {
		s.mu.Lock()
		j.state = StateFailed
		j.errMsg = buildErr.Error()
		j.finished = time.Now()
		s.jobs[j.id] = j
		s.metrics.JobsFailed.Add(1)
		s.recordFinishedLocked(j)
		s.mu.Unlock()
		s.journal.done(j.id, StateFailed)
		return
	}
	j.fingerprint = req.Program.Fingerprint()
	j.cacheKey = cacheKey(j.fingerprint, req)
	if cp, err := core.DecodeCheckpoint(jj.checkpoint); err == nil && len(jj.checkpoint) > 0 {
		j.resumeFrom = cp
		j.resumed = true
		s.metrics.ResumeSavedExecs.Add(int64(cp.Stats.Executions))
	}
	s.metrics.JournalReplayedJobs.Add(1)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return // still live in the journal; the next startup replays it
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	select {
	case s.queue <- j:
	case <-s.drainCh:
		// Shutdown won the race for queue space. Leave the job live in
		// the journal (no done record): it replays on the next start.
		s.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCanceled
			j.finished = time.Now()
			s.metrics.JobsCanceled.Add(1)
			s.recordFinishedLocked(j)
		}
		s.mu.Unlock()
	}
}

// Ready reports whether the service has finished replaying its journal
// backlog and is not draining — the /readyz signal.
func (s *Service) Ready() bool {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return s.ready.Load() && !draining
}

// safeRunJob is the worker loop's last line of defense: core.Explore
// already converts engine panics to errors, but a panic in the service's
// own bookkeeping (or an exotic escape from the engine boundary) must
// still fail only the one job, never the worker goroutine — a dead worker
// would silently shrink the pool for the life of the process.
func (s *Service) safeRunJob(j *Job) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.mu.Lock()
		if j.state.Terminal() {
			s.mu.Unlock()
			return
		}
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("service: worker panic: %v", r)
		j.finished = time.Now()
		j.cancel = nil
		s.metrics.JobsFailed.Add(1)
		s.recordFinishedLocked(j)
		s.mu.Unlock()
		if s.journal != nil {
			s.journal.done(j.id, StateFailed)
		}
	}()
	s.runJob(j)
}

// shardRunners builds the leg runners for one sharded job: shard 0 is
// always local, further shards round-robin over local + configured peers,
// each peer behind the resilience pool (breaker, retries, hedging, local
// demotion).
func (s *Service) shardRunners() []shard.Runner {
	if s.pool == nil {
		return []shard.Runner{shard.Local{}}
	}
	return s.pool.Runners()
}

// PeerStatus snapshots the peer pool's per-peer health for /metrics and
// progress rows; nil when the service has no peers.
func (s *Service) PeerStatus() []obs.PeerProgress {
	if s.pool == nil {
		return nil
	}
	return s.pool.Snapshot()
}

// Metrics exposes the counters (for tests and embedding servers).
func (s *Service) Metrics() *Metrics { return &s.metrics }

// Config returns the effective configuration — cfg as passed to New with
// defaults applied (what the service actually runs with).
func (s *Service) Config() Config { return s.cfg }

// QueueDepth reports the jobs currently waiting.
func (s *Service) QueueDepth() int { return len(s.queue) }

// MaxShards bounds SubmitRequest.Shards: past this, coordination overhead
// dwarfs any parallelism a litmus-sized job can expose.
const MaxShards = 64

// cacheKey builds the verdict-cache key: everything that determines the
// result, nothing that only determines how fast it is computed (Workers)
// or what a client called the program (the fingerprint ignores names).
// MemoryBudget is deliberately excluded: a memory-truncated result is
// transient and never cached (see runJob), and an untruncated run under a
// budget equals the unbudgeted run. Shards is excluded on the unbounded
// path for the same reason — merged totals are identical by construction —
// but included when MaxExecutions is set, because that bound applies per
// shard and changes which prefix of the space a truncated run covers.
func cacheKey(fp string, req SubmitRequest) string {
	k := fmt.Sprintf("%s|%s|max=%d|maxev=%d|symm=%v", fp, req.Model, req.MaxExecutions, req.MaxEvents, req.Symmetry)
	if req.MaxExecutions > 0 && req.Shards > 1 {
		k += fmt.Sprintf("|shards=%d", req.Shards)
	}
	return k
}

// Submit validates req, answers it from the verdict cache when possible,
// and otherwise enqueues it. It returns the job snapshot — immediately
// terminal on a cache hit — or ErrQueueFull/ErrDraining under pressure.
func (s *Service) Submit(req SubmitRequest) (JobView, error) {
	if req.Program == nil {
		return JobView{}, errors.New("service: request has no program")
	}
	model, err := memmodel.ByName(req.Model)
	if err != nil {
		return JobView{}, err
	}
	if err := req.Program.Validate(); err != nil {
		return JobView{}, err
	}
	if req.Shards < 0 || req.Shards > MaxShards {
		return JobView{}, fmt.Errorf("service: shards %d out of range [0, %d]", req.Shards, MaxShards)
	}
	if req.Timeout <= 0 {
		req.Timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (req.Timeout <= 0 || req.Timeout > s.cfg.MaxTimeout) {
		req.Timeout = s.cfg.MaxTimeout
	}
	fp := req.Program.Fingerprint()

	// Static analysis is cheap (one pass over a litmus-sized program) and
	// pure, so it runs outside the service lock on every submission; the
	// findings ride along on the job for clients that want them.
	var diags []string
	for _, f := range analyze.Analyze(req.Program).Lint(req.Model) {
		diags = append(diags, f.String())
	}
	s.metrics.VetFindings.Add(int64(len(diags)))

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		return JobView{}, ErrDraining
	}
	if !s.breaker.allow(fp, time.Now()) {
		s.mu.Unlock()
		s.metrics.BreakerRejected.Add(1)
		return JobView{}, ErrCircuitOpen
	}
	s.nextID++
	j := &Job{
		id:          fmt.Sprintf("job-%06d", s.nextID),
		state:       StateQueued,
		req:         req,
		model:       model,
		fingerprint: fp,
		cacheKey:    cacheKey(fp, req),
		diagnostics: diags,
		submitted:   time.Now(),
	}
	s.metrics.JobsSubmitted.Add(1)
	if res, ok := s.cache.get(j.cacheKey); ok {
		s.metrics.CacheHits.Add(1)
		j.state = StateDone
		j.cacheHit = true
		j.result = res
		j.finished = j.submitted
		s.jobs[j.id] = j
		s.recordFinishedLocked(j)
		view := j.view()
		s.mu.Unlock()
		return view, nil
	}
	s.metrics.CacheMisses.Add(1)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
	default:
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		return JobView{}, ErrQueueFull
	}
	view := j.view()
	s.mu.Unlock()
	// Journal the accepted job before answering (the fsync is the
	// durability point), outside s.mu so disk latency never blocks polls.
	if s.journal != nil {
		s.journal.submit(j.id, req)
	}
	return view, nil
}

// Get returns a snapshot of the job with the given id.
func (s *Service) Get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs snapshots every retained job, newest first.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view())
	}
	for i, k := 0, len(views)-1; i < k; i, k = i+1, k-1 {
		views[i], views[k] = views[k], views[i]
	}
	return views
}

// Cancel asks the job to stop: a queued job is marked canceled and will
// be skipped when dequeued; a running job's context is cancelled and its
// partial result retained. Terminal jobs are left alone (reported false).
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.state.Terminal() {
		s.mu.Unlock()
		return false
	}
	j.userCancel = true
	if j.state == StateQueued {
		j.state = StateCanceled
		j.finished = time.Now()
		s.metrics.JobsCanceled.Add(1)
		s.recordFinishedLocked(j)
		s.mu.Unlock()
		// Retire the job from the journal outside s.mu (fsync latency).
		if s.journal != nil {
			s.journal.done(id, StateCanceled)
		}
		return true
	}
	if j.cancel != nil {
		j.cancel()
	}
	s.mu.Unlock()
	return true
}

// runJob explores one dequeued job with its own deadline context. A run
// cut short by the memory budget — transient pressure, not a property of
// the program — is retried with backoff up to Config.MaxAttempts; an
// engine panic (surfaced as *core.EngineError by the explorer's recovery
// boundary) fails the job, writes a crash artifact, and feeds the circuit
// breaker. The worker loop itself is additionally guarded in New as the
// second line of defense: even a panic escaping runJob's own bookkeeping
// must not kill a worker goroutine.
func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()

	// Periodic checkpoints flow straight into the journal; the sink runs
	// on the explorer's drain barrier, so journal fsync latency paces
	// checkpointing, never individual executions.
	var ckptOpts *core.CheckpointOptions
	if s.journal != nil {
		ckptOpts = &core.CheckpointOptions{
			EveryExecs: s.cfg.CheckpointEveryExecs,
			Sink: func(cp *core.Checkpoint) {
				if s.journal.checkpoint(j.id, cp) {
					s.metrics.JournalCheckpoints.Add(1)
				}
			},
		}
	}

	// Live progress: each snapshot is published for polling, wakes the
	// /progress long-pollers and feeds the histograms. The sink runs on the
	// exploration goroutine between waves; s.mu is only ever held for
	// job-transition bookkeeping (never while exploring), so taking it
	// here cannot deadlock or stall other jobs.
	var progOpts *core.ProgressOptions
	if s.cfg.ProgressEvery > 0 {
		progOpts = &core.ProgressOptions{
			Every: s.cfg.ProgressEvery,
			Sink:  func(snap obs.ProgressSnapshot) { s.observeProgress(j, snap) },
		}
	}

	// explore runs one attempt: the legacy single explorer, or — when the
	// submission asked for shards — the internal/shard coordinator, with
	// journal durability and progress rerouted through its own hooks
	// (core's Checkpoint/Progress options are coordinator-owned there).
	explore := func(ctx context.Context) (*core.Result, error) {
		copts := core.Options{
			Model:         j.model,
			Context:       ctx,
			MaxExecutions: j.req.MaxExecutions,
			MaxEvents:     j.req.MaxEvents,
			MemoryBudget:  j.req.MemoryBudget,
			Workers:       j.req.Workers,
			Symmetry:      j.req.Symmetry,
			ResumeFrom:    j.resumeFrom,
		}
		if j.req.Shards <= 1 {
			copts.Checkpoint = ckptOpts
			copts.Progress = progOpts
			// The portfolio covers plain one-explorer runs; a job resuming
			// from a checkpoint (journal replay, memory-budget retry) covers
			// a prefix no other engine can reproduce, so it runs legacy.
			if s.cfg.Portfolio && j.resumeFrom == nil {
				return s.explorePortfolio(ctx, j, copts)
			}
			return core.Explore(j.req.Program, copts)
		}
		so := shard.Options{
			Shards:  j.req.Shards,
			Core:    copts,
			Source:  j.req.Source,
			Test:    j.req.Test,
			Runners: s.shardRunners(),
			OnSteal: func() { s.metrics.ShardSteals.Add(1) },
			OnRetry: func() { s.metrics.ShardRetries.Add(1) },
		}
		if s.pool != nil {
			so.PeerStatus = s.pool.Snapshot
		}
		// The coordinator reports its own active-leg count from its event
		// loop (single-threaded per job); the service gauge sums the deltas
		// across jobs, and every run ends back at zero.
		prev := 0
		so.OnActive = func(active int) {
			s.metrics.ShardsActive.Add(int64(active - prev))
			prev = active
		}
		if ckptOpts != nil {
			so.CheckpointSink = ckptOpts.Sink
			so.CheckpointEveryExecs = ckptOpts.EveryExecs
		}
		if progOpts != nil {
			so.OnProgress = progOpts.Sink
			so.ProgressEvery = progOpts.Every
		}
		return shard.Explore(j.req.Program, so)
	}

	var res *core.Result
	var err error
	for attempt := 1; ; attempt++ {
		ctx := context.Background()
		var cancel context.CancelFunc
		if j.req.Timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, j.req.Timeout)
		} else {
			ctx, cancel = context.WithCancel(ctx)
		}
		s.mu.Lock()
		j.cancel = cancel
		j.attempts = attempt
		userCancel := j.userCancel
		s.mu.Unlock()
		if userCancel {
			cancel()
		}

		s.metrics.InFlight.Add(1)
		res, err = explore(ctx)
		s.metrics.InFlight.Add(-1)
		cancel()

		s.mu.Lock()
		j.cancel = nil
		userCancel = j.userCancel
		s.mu.Unlock()
		if errors.Is(err, core.ErrCheckpointMismatch) && j.resumeFrom != nil {
			// The journaled checkpoint no longer matches this program,
			// model or engine (e.g. the binary changed under the journal).
			// Run fresh rather than fail; the retry does not consume an
			// attempt — nothing was explored yet.
			s.mu.Lock()
			j.resumeFrom = nil
			j.resumed = false
			s.mu.Unlock()
			attempt--
			continue
		}
		if err != nil || userCancel || attempt >= s.cfg.MaxAttempts ||
			res.TruncatedReason != core.TruncMemoryBudget {
			break
		}
		// A memory-budget retry resumes from the final checkpoint the
		// truncated run handed back instead of starting over.
		if res.Checkpoint != nil {
			j.resumeFrom = res.Checkpoint
		}
		s.metrics.JobsRetried.Add(1)
		time.Sleep(s.cfg.RetryBackoff)
	}

	// On an engine panic, write the repro artifact before taking the
	// service lock: artifact IO must not stall job polling.
	ee, _ := core.AsEngineError(err)
	artifact := ""
	if ee != nil {
		s.metrics.EngineErrors.Add(1)
		if s.crashes != nil {
			s.crashMu.Lock()
			path, werr := s.crashes.write(s.buildArtifact(j, ee))
			s.crashMu.Unlock()
			if werr == nil {
				artifact = path
				s.metrics.CrashArtifacts.Add(1)
			}
		}
	}

	// A cross-backend disagreement likewise writes its repro — both
	// verdicts plus the program — before the lock.
	var dis *disagreementError
	quarantine := ""
	if errors.As(err, &dis) && s.quarantines != nil {
		s.crashMu.Lock()
		path, werr := s.quarantines.writeJSON(quarantineKind, j.fingerprint, j.id, s.buildQuarantine(j, dis.out))
		s.crashMu.Unlock()
		if werr == nil {
			quarantine = path
			s.metrics.QuarantineArtifacts.Add(1)
		}
	}

	// A sharded run that finished while every peer was dark ran fully
	// local; say so where clients can see it, not just in the metrics.
	if err == nil && j.req.Shards > 1 && s.pool != nil && s.pool.AllDark() {
		s.mu.Lock()
		j.diagnostics = append(j.diagnostics,
			"degraded: all peers dark, shard legs ran locally (hmcd_peer_demotions_total counts them)")
		s.mu.Unlock()
	}

	cached := false
	s.mu.Lock()
	j.finished = time.Now()
	j.engineErr = ee
	j.artifact = artifact
	switch {
	case dis != nil:
		// Two engines both claim exhaustive coverage and disagree: at
		// least one is wrong, and the service cannot tell which. The job
		// fails with its own state, neither verdict is served or cached,
		// and the fingerprint trips toward the breaker exactly like an
		// engine crash — a program that splits the engines is poisoned
		// until a human reads the quarantine artifact.
		j.state = StateQuarantined
		j.errMsg = err.Error()
		j.quarantine = quarantine
		s.metrics.JobsQuarantined.Add(1)
		s.breaker.record(j.fingerprint, time.Now())
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.metrics.JobsFailed.Add(1)
		if ee != nil {
			s.breaker.record(j.fingerprint, time.Now())
		}
	case j.userCancel:
		j.state = StateCanceled
		j.result = res
		s.metrics.JobsCanceled.Add(1)
		s.metrics.addStats(&res.Stats)
	default:
		j.state = StateDone
		j.result = res
		s.metrics.JobsCompleted.Add(1)
		s.metrics.addStats(&res.Stats)
		// A clean run closes the fingerprint's breaker — in particular the
		// half-open probe that admitted this job after a cooldown.
		s.breaker.succeed(j.fingerprint)
		if res.Interrupted {
			s.metrics.JobsInterrupted.Add(1)
		} else if res.TruncatedReason != core.TruncMemoryBudget {
			// Execution/event-capped results are keyed by their bounds and
			// deterministic, so they cache; a memory-budget truncation
			// depends on transient machine state and must never be served
			// to a later submitter.
			s.cache.put(j.cacheKey, res)
			cached = true
		}
	}
	state := j.state
	s.recordFinishedLocked(j)
	s.mu.Unlock()

	// Durability tail, outside s.mu: retire the job from the journal and
	// persist the verdict cache when it gained an entry.
	if s.journal != nil {
		s.journal.done(j.id, state)
		if cached {
			s.persistVerdicts()
		}
	}
}

// observeProgress publishes one exploration snapshot for job j: the job
// record gets it (job polls and the /progress endpoint serve it), waiters
// are woken, and the service-wide distributions absorb it.
func (s *Service) observeProgress(j *Job, snap obs.ProgressSnapshot) {
	s.metrics.ObserveProgress(snap)
	s.mu.Lock()
	cp := snap
	j.progressSeq++
	cp.Seq = j.progressSeq
	j.progress = &cp
	j.notifyProgressLocked()
	s.mu.Unlock()
}

// WaitProgress blocks until job id has a progress snapshot newer than
// afterSeq, reaches a terminal state, or ctx expires — whichever first —
// and returns the job's current view (ok=false: no such job). This is the
// long-poll primitive behind GET /v1/jobs/{id}/progress: a client chains
// calls, passing the last snapshot's Seq, and observes every cadence tick
// without busy-polling.
func (s *Service) WaitProgress(ctx context.Context, id string, afterSeq int) (JobView, bool) {
	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return JobView{}, false
		}
		if j.state.Terminal() || (j.progress != nil && j.progress.Seq > afterSeq) {
			view := j.view()
			s.mu.Unlock()
			return view, true
		}
		if j.progressCh == nil {
			j.progressCh = make(chan struct{})
		}
		ch := j.progressCh
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			s.mu.Lock()
			view := j.view()
			s.mu.Unlock()
			return view, true
		}
	}
}

// persistVerdicts writes the verdict cache to disk (atomic replace). A
// no-op once killForTest has fired: the simulated-dead process must not
// keep writing durable state.
func (s *Service) persistVerdicts() {
	if s.cfg.CacheSize <= 0 || s.killed.Load() {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.killed.Load() {
		return
	}
	saveVerdicts(s.cfg.JournalDir, s.cache) //nolint:errcheck // cache persistence is best effort
}

// killForTest simulates the process dying for restart tests: the journal
// freezes on disk and verdict persistence stops, exactly as if the
// process had been SIGKILLed at this instant. In-memory state keeps
// running (the test still has to Shutdown), but nothing durable changes.
func (s *Service) killForTest() {
	s.killed.Store(true)
	if s.journal != nil {
		s.journal.kill()
	}
}

// buildArtifact assembles the crash repro for a failed job.
func (s *Service) buildArtifact(j *Job, ee *core.EngineError) *CrashArtifact {
	return &CrashArtifact{
		Schema:        core.SchemaVersion,
		JobID:         j.id,
		Time:          time.Now().UTC(),
		Program:       j.req.Program.Name,
		Fingerprint:   j.fingerprint,
		Model:         j.req.Model,
		Source:        j.req.Source,
		Test:          j.req.Test,
		ProgramDump:   j.req.Program.String(),
		MaxExecutions: j.req.MaxExecutions,
		MaxEvents:     j.req.MaxEvents,
		MemoryBudget:  j.req.MemoryBudget,
		Workers:       j.req.Workers,
		Symmetry:      j.req.Symmetry,
		TimeoutMS:     j.req.Timeout.Milliseconds(),
		Attempts:      j.attempts,
		Panic:         fmt.Sprint(ee.PanicValue),
		Stack:         ee.Stack,
		Stats:         ee.Stats,
	}
}

// CrashArtifacts reports the artifact files resident in the crash
// directory (a point-in-time gauge for /metrics).
func (s *Service) CrashArtifacts() int {
	if s.crashes == nil {
		return 0
	}
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	return s.crashes.count()
}

// recordFinishedLocked appends j to the finished history and evicts the
// oldest finished job records beyond the configured retention. It is
// called at every terminal transition, which makes it the single point
// where progress long-pollers are woken for the last time. Callers hold
// s.mu.
func (s *Service) recordFinishedLocked(j *Job) {
	j.notifyProgressLocked()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.JobHistory {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Shutdown stops accepting jobs, waits for the queue to drain and the
// workers to finish, then flushes the verdict cache and closes the
// journal. If ctx expires first, every queued and running job is
// cancelled (their partial results remain pollable; a cancelled running
// job's last journaled checkpoint stays live, so the next start resumes
// it) and Shutdown returns ctx.Err after the workers exit.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	if first {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
	if first {
		// The replay goroutine may still be feeding the queue; closing
		// drainCh unblocks it, and the queue closes only after it exits —
		// never close a channel with a live sender.
		s.replay.Wait()
		close(s.queue)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	err := func() error {
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			s.mu.Lock()
			for _, j := range s.jobs {
				if j.state == StateQueued {
					j.state = StateCanceled
					j.userCancel = true
					j.finished = time.Now()
					s.metrics.JobsCanceled.Add(1)
					s.recordFinishedLocked(j)
				} else if j.cancel != nil {
					j.userCancel = true
					j.cancel()
				}
			}
			s.mu.Unlock()
			<-done
			return ctx.Err()
		}
	}()
	if first && s.pool != nil {
		s.pool.Close() // stop the probe goroutines; workers are done
	}
	if first && s.journal != nil {
		if !s.killed.Load() {
			s.persistVerdicts()
		}
		s.journal.close()
	}
	return err
}
