package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/obs"
	"hmc/internal/prog"
	"hmc/internal/shard"
)

// maxSubmitBytes bounds a submission body; litmus tests are tiny, and the
// parser is the service's untrusted-input boundary.
const maxSubmitBytes = 1 << 20

// submitJSON is the wire form of a job submission: either Source (a
// litmus test in the plain-text format) or Test (a built-in corpus test
// name) selects the program.
type submitJSON struct {
	Source        string `json:"source,omitempty"`
	Test          string `json:"test,omitempty"`
	Model         string `json:"model"`
	MaxExecutions int    `json:"max_executions,omitempty"`
	MaxEvents     int    `json:"max_events,omitempty"`
	MemoryBudget  int64  `json:"memory_budget,omitempty"`
	Workers       int    `json:"workers,omitempty"`
	Symmetry      bool   `json:"symmetry,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	TimeoutMS     int64  `json:"timeout_ms,omitempty"`
}

// jobJSON is the wire form of a job snapshot.
type jobJSON struct {
	ID            string           `json:"id"`
	State         JobState         `json:"state"`
	Program       string           `json:"program"`
	Fingerprint   string           `json:"fingerprint"`
	Model         string           `json:"model"`
	CacheHit      bool             `json:"cache_hit"`
	Resumed       bool             `json:"resumed,omitempty"`
	SubmittedAt   time.Time        `json:"submitted_at"`
	DurationMS    int64            `json:"duration_ms,omitempty"`
	Attempts      int              `json:"attempts,omitempty"`
	Error         string           `json:"error,omitempty"`
	Diagnostics   []string         `json:"diagnostics,omitempty"`
	EngineError   *engineErrorJSON `json:"engine_error,omitempty"`
	CrashArtifact string           `json:"crash_artifact,omitempty"`
	Result        *resultJSON      `json:"result,omitempty"`
	// Portfolio attestation: which backend's exhaustive verdict landed
	// first (with its outcome-set digest), the compact per-backend trail,
	// and — for quarantined jobs — the disagreement artifact's path.
	WinnerBackend      string       `json:"winner_backend,omitempty"`
	OutcomeDigest      string       `json:"outcome_digest,omitempty"`
	Attestation        []attestJSON `json:"attestation,omitempty"`
	QuarantineArtifact string       `json:"quarantine_artifact,omitempty"`
	// Progress is the latest exploration snapshot: live counters, rates and
	// the sampled phase breakdown while the job runs, the final snapshot
	// once it stops. Absent before the first snapshot and for cache hits.
	Progress *obs.ProgressSnapshot `json:"progress,omitempty"`
}

// engineErrorJSON carries a contained engine panic's diagnostics to the
// client. The stack is truncated to keep job payloads bounded; the full
// stack lives in the crash artifact.
type engineErrorJSON struct {
	Op          string `json:"op"`
	Panic       string `json:"panic"`
	Program     string `json:"program"`
	Fingerprint string `json:"fingerprint"`
	Model       string `json:"model"`
	Stack       string `json:"stack,omitempty"`
}

const maxStackBytes = 4096

// attestJSON is one backend's compact attestation record on a job
// payload: the verdict's comparable core without the full outcome list
// (which scales with the program; the complete verdicts live in the
// quarantine artifact when they matter).
type attestJSON struct {
	Backend       string `json:"backend"`
	Status        string `json:"status"`
	Reason        string `json:"reason,omitempty"`
	ElapsedMS     int64  `json:"elapsed_ms"`
	OutcomeDigest string `json:"outcome_digest,omitempty"`
	Outcomes      int    `json:"outcomes,omitempty"`
	Allowed       *bool  `json:"allowed,omitempty"`
	Assertion     string `json:"assertion,omitempty"`
	Exhaustive    bool   `json:"exhaustive,omitempty"`
}

// resultJSON is the wire form of an exploration outcome. Allowed is the
// litmus verdict (ExistsCount > 0); Exhaustive distinguishes a definitive
// verdict from the partial counts of a truncated or interrupted run.
type resultJSON struct {
	Executions        int      `json:"executions"`
	ExistsCount       int      `json:"exists_count"`
	ExistsDesc        string   `json:"exists_desc,omitempty"`
	Allowed           bool     `json:"allowed"`
	Blocked           int      `json:"blocked"`
	States            int      `json:"states"`
	MemoHits          int      `json:"memo_hits"`
	RevisitsTried     int      `json:"revisits_tried"`
	RevisitsTaken     int      `json:"revisits_taken"`
	Truncated         bool     `json:"truncated"`
	TruncatedReason   string   `json:"truncated_reason,omitempty"`
	Interrupted       bool     `json:"interrupted"`
	Exhaustive        bool     `json:"exhaustive"`
	AssertionFailures []string `json:"assertion_failures,omitempty"`
}

func toJobJSON(v JobView) jobJSON {
	out := jobJSON{
		ID:            v.ID,
		State:         v.State,
		Program:       v.Program,
		Fingerprint:   v.Fingerprint,
		Model:         v.Model,
		CacheHit:      v.CacheHit,
		Resumed:       v.Resumed,
		SubmittedAt:   v.Submitted,
		Attempts:      v.Attempts,
		Error:         v.Err,
		Diagnostics:   v.Diagnostics,
		CrashArtifact: v.CrashArtifact,
		Progress:      v.Progress,

		QuarantineArtifact: v.QuarantineArtifact,
	}
	if v.Winner != nil {
		out.WinnerBackend = v.Winner.Backend
		out.OutcomeDigest = v.Winner.OutcomeDigest
	}
	for _, att := range v.Attestation {
		aj := attestJSON{
			Backend:   att.Backend,
			Status:    string(att.Status),
			Reason:    att.Reason,
			ElapsedMS: att.Elapsed.Milliseconds(),
		}
		if vd := att.Verdict; vd != nil {
			aj.OutcomeDigest = vd.OutcomeDigest
			aj.Outcomes = len(vd.Outcomes)
			allowed := vd.Allowed
			aj.Allowed = &allowed
			aj.Assertion = string(vd.Assertion)
			aj.Exhaustive = vd.Exhaustive
		}
		out.Attestation = append(out.Attestation, aj)
	}
	if ee := v.EngineError; ee != nil {
		stack := ee.Stack
		if len(stack) > maxStackBytes {
			stack = stack[:maxStackBytes] + "\n[stack truncated; see crash artifact]"
		}
		out.EngineError = &engineErrorJSON{
			Op:          ee.Op,
			Panic:       fmt.Sprint(ee.PanicValue),
			Program:     ee.Program,
			Fingerprint: ee.Fingerprint,
			Model:       ee.Model,
			Stack:       stack,
		}
	}
	if !v.Finished.IsZero() {
		start := v.Started
		if start.IsZero() {
			start = v.Submitted
		}
		out.DurationMS = v.Finished.Sub(start).Milliseconds()
	}
	if r := v.Result; r != nil {
		rj := &resultJSON{
			Executions:      r.Executions,
			ExistsCount:     r.ExistsCount,
			ExistsDesc:      v.ExistsDesc,
			Allowed:         r.ExistsCount > 0,
			Blocked:         r.Blocked,
			States:          r.States,
			MemoHits:        r.MemoHits,
			RevisitsTried:   r.RevisitsTried,
			RevisitsTaken:   r.RevisitsTaken,
			Truncated:       r.Truncated,
			TruncatedReason: r.TruncatedReason,
			Interrupted:     r.Interrupted,
			Exhaustive:      r.Exhaustive(),
		}
		for _, e := range r.Errors {
			rj.AssertionFailures = append(rj.AssertionFailures,
				fmt.Sprintf("thread %d: %s", e.Thread, e.Msg))
		}
		out.Result = rj
	}
	return out
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs               submit a litmus source or corpus test
//	GET    /v1/jobs               list retained jobs
//	GET    /v1/jobs/{id}          poll one job
//	GET    /v1/jobs/{id}/progress long-poll live progress (?seq=N&wait=5s)
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	POST   /v1/shards             execute one shard leg for a peer coordinator
//	GET    /v1/shards             peer-leg counters (active, served)
//	GET    /v1/models             available memory models
//	GET    /v1/tests              built-in corpus test names
//	GET    /healthz               liveness probe (200 while the process serves)
//	GET    /readyz                readiness probe (503 during replay or drain)
//	GET    /metrics               Prometheus text-format counters
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/shards", s.handleShardLeg)
	mux.HandleFunc("GET /v1/shards", s.handleShardStatus)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/tests", s.handleTests)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON marshals v to a buffer *before* touching the response. The
// previous implementation streamed json.NewEncoder(w).Encode(v) after
// WriteHeader: an encode failure halfway through (one NaN anywhere in the
// payload) left the client a truncated 200 body that fails to parse, with
// the error swallowed and nothing counted. Buffering first means an encode
// failure costs a clean 500 with a valid JSON body instead, and
// hmcd_http_encode_errors_total records it.
func (s *Service) writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		s.metrics.HTTPEncodeErrors.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", "internal: response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)+1))
	w.WriteHeader(status)
	buf = append(buf, '\n')
	w.Write(buf) //nolint:errcheck // client gone: nothing to do
}

func (s *Service) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var p *prog.Program
	switch {
	case req.Source != "" && req.Test != "":
		s.writeError(w, http.StatusBadRequest, errors.New(`give "source" or "test", not both`))
		return
	case req.Source != "":
		var err error
		if p, err = litmus.Parse(req.Source); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("parse: %w", err))
			return
		}
	case req.Test != "":
		tc, ok := litmus.ByName(req.Test)
		if !ok {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown corpus test %q", req.Test))
			return
		}
		p = tc.P
	default:
		s.writeError(w, http.StatusBadRequest, errors.New(`need a "source" litmus test or a corpus "test" name`))
		return
	}
	if req.Model == "" {
		req.Model = "imm"
	}
	view, err := s.Submit(SubmitRequest{
		Program:       p,
		Model:         req.Model,
		MaxExecutions: req.MaxExecutions,
		MaxEvents:     req.MaxEvents,
		MemoryBudget:  req.MemoryBudget,
		Workers:       req.Workers,
		Symmetry:      req.Symmetry,
		Shards:        req.Shards,
		Timeout:       time.Duration(req.TimeoutMS) * time.Millisecond,
		Source:        req.Source,
		Test:          req.Test,
	})
	switch {
	case errors.Is(err, ErrCircuitOpen):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.BreakerCooldown.Seconds())))
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if view.State.Terminal() {
		status = http.StatusOK // cache hit: born done
	}
	s.writeJSON(w, status, toJobJSON(view))
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	views := s.Jobs()
	out := make([]jobJSON, len(views))
	for i, v := range views {
		out[i] = toJobJSON(v)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, toJobJSON(view))
}

// progressWaitDefault and progressWaitMax bound the /progress long-poll:
// the handler parks until a new snapshot, the terminal transition, or the
// wait expires — whichever first — and always answers 200 with the current
// state, so clients chain requests without busy-polling.
const (
	progressWaitDefault = 25 * time.Second
	progressWaitMax     = time.Minute
)

// handleProgress serves GET /v1/jobs/{id}/progress?seq=N&wait=5s: it
// long-polls for a progress snapshot with seq greater than N (0 means
// "any"). The response carries the job state, the latest snapshot (null
// before the first one lands) and, once terminal, the full job record.
func (s *Service) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	afterSeq := 0
	if v := r.URL.Query().Get("seq"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad seq %q", v))
			return
		}
		afterSeq = n
	}
	wait := progressWaitDefault
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q (want a duration like 5s)", v))
			return
		}
		wait = min(d, progressWaitMax)
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	view, ok := s.WaitProgress(ctx, id, afterSeq)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
		return
	}
	out := map[string]any{
		"id":       view.ID,
		"state":    view.State,
		"progress": view.Progress,
	}
	if view.State.Terminal() {
		out["job"] = toJobJSON(view)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", id))
		return
	}
	canceled := s.Cancel(id)
	view, _ := s.Get(id)
	s.writeJSON(w, http.StatusOK, map[string]any{"canceled": canceled, "job": toJobJSON(view)})
}

// maxLegBytes bounds a /v1/shards request body: a leg checkpoint scales
// with the frontier and memo of a big exploration, so the bound is generous
// (it matches what HTTPPeer will read back).
const maxLegBytes = 256 << 20

// handleShardLeg serves POST /v1/shards — the peer side of distributed
// sharded exploration. The request is a shard.LegWire: the program (litmus
// source or corpus name), the run's semantic options, and the shard's
// checkpoint + ownership spec. The leg runs to exhaustion of its owned
// frontier (or until the client disconnects, which cancels it) and the
// response carries the leg's final checkpoint. Legs are not jobs: they
// bypass the queue, cache and journal — the coordinating daemon owns the
// job record, its durability and exactly-once accounting.
func (s *Service) handleShardLeg(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	var lw shard.LegWire
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxLegBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&lw); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad leg body: %w", err))
		return
	}
	var p *prog.Program
	switch {
	case lw.Source != "" && lw.Test != "":
		s.writeError(w, http.StatusBadRequest, errors.New(`give "source" or "test", not both`))
		return
	case lw.Source != "":
		var err error
		if p, err = litmus.Parse(lw.Source); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("parse: %w", err))
			return
		}
	case lw.Test != "":
		tc, ok := litmus.ByName(lw.Test)
		if !ok {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown corpus test %q", lw.Test))
			return
		}
		p = tc.P
	default:
		s.writeError(w, http.StatusBadRequest, errors.New(`leg needs a "source" litmus test or a corpus "test" name`))
		return
	}
	s.metrics.ShardLegsActive.Add(1)
	s.metrics.ShardLegsServed.Add(1)
	cp, err := shard.ExecuteLeg(r.Context(), &lw, p)
	s.metrics.ShardLegsActive.Add(-1)
	if err != nil {
		// The coordinator treats any failure identically (re-run the leg
		// from its input checkpoint), so a plain 400 with the reason is
		// enough; no partial state escapes a failed leg.
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := cp.Encode()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, shard.LegResponse{Checkpoint: data})
}

// handleShardStatus reports the peer-leg counters — a cheap way for an
// operator (or the chaos tests) to see whether this daemon is serving
// remote coordinators.
func (s *Service) handleShardStatus(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"active": s.metrics.ShardLegsActive.Load(),
		"served": s.metrics.ShardLegsServed.Load(),
	})
}

func (s *Service) handleModels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"models": memmodel.Names()})
}

func (s *Service) handleTests(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"tests": litmus.Names()})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"inflight": s.metrics.InFlight.Load(),
		"queue":    s.QueueDepth(),
		"cache": map[string]any{
			"entries":   s.cache.len(),
			"capacity":  s.cache.capacity(),
			"evictions": s.metrics.CacheEvictions.Load(),
		},
	})
}

// handleReady is the readiness probe: liveness (/healthz) answers 200 as
// long as the process serves, while readiness refuses traffic until the
// journal backlog has been re-enqueued, and again once draining starts —
// so a rolling restart routes new submissions elsewhere both while a
// replacement warms up and while the old daemon winds down.
// A journal running degraded (a write or fsync failed — disk full, dying
// device) still answers 200: the service keeps checking programs, only
// crash durability is suspended. The body says so, for operators and for
// probes that read it.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "not ready"})
		return
	}
	body := map[string]any{"status": "ready"}
	if s.journal != nil {
		if degraded, why := s.journal.degradedState(); degraded {
			body["status"] = "degraded"
			body["journal"] = why
		}
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writePrometheus(w, s.QueueDepth(), s.cache.len(), s.cache.capacity(), s.CrashArtifacts(), s.Ready(), s.PeerStatus())
}
