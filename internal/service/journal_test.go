package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hmc/internal/core"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
)

// manyExecsSource is a litmus program whose sc exploration has 11550
// executions (the interleavings of three store-only threads): long
// enough that the exploration journals several checkpoints before the
// test kills the service, small enough to run to completion twice.
const manyExecsSource = `
name many-writes
T0: W x 1 ; W x 2 ; W x 3 ; W x 4
T1: W x 11 ; W x 12 ; W x 13 ; W x 14
T2: W x 21 ; W x 22 ; W x 23
exists x=4
`

func submitSource(t *testing.T, s *Service, src, model string, maxExecs int) JobView {
	t.Helper()
	p, err := litmus.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	v, err := s.Submit(SubmitRequest{
		Program:       p,
		Model:         model,
		MaxExecutions: maxExecs,
		Source:        src,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return v
}

// TestJournalRoundTrip exercises the journal in isolation: submits,
// checkpoints and done records survive a reopen, finished jobs are
// retired, and the id sequence continues.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, stats, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.liveJobs != 0 || stats.skipped != 0 {
		t.Fatalf("fresh journal reports %+v", stats)
	}
	req := SubmitRequest{Test: "SB", Model: "sc"}
	j.submit("job-000001", req)
	j.submit("job-000002", req)
	j.submit("job-000003", SubmitRequest{Model: "sc"}) // no Source/Test: not journaled
	cp := &core.Checkpoint{Version: core.CheckpointVersion, Schema: core.SchemaVersion, Model: "sc"}
	if !j.checkpoint("job-000002", cp) {
		t.Fatal("checkpoint append refused")
	}
	j.done("job-000001", StateDone)
	j.close()

	j2, stats2, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if stats2.liveJobs != 1 {
		t.Fatalf("liveJobs = %d, want 1 (job-000002)", stats2.liveJobs)
	}
	live := j2.takeLive()
	if len(live) != 1 || live[0].submit.ID != "job-000002" {
		t.Fatalf("live = %+v", live)
	}
	if len(live[0].checkpoint) == 0 {
		t.Fatal("replayed job lost its checkpoint")
	}
	if got := j2.maxLiveID(); got != 2 {
		t.Fatalf("maxLiveID = %d, want 2", got)
	}
}

// TestJournalSkipsTornAndForeignRecords: a torn tail (the crash artifact
// the journal exists to survive) and records from another engine schema
// are dropped, never fatal, and are counted.
func TestJournalSkipsTornAndForeignRecords(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	j.submit("job-000001", SubmitRequest{Test: "SB", Model: "sc"})
	j.close()

	// Corrupt the journal the way a crash mid-append would: a torn final
	// line. Also splice in a record from a pretend future engine.
	files, err := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("journal files = %v (%v)", files, err)
	}
	foreign, _ := json.Marshal(jrec{Type: jrecSubmit, Schema: core.SchemaVersion + 1, ID: "job-000009", Test: "LB"})
	f, err := os.OpenFile(files[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "%s\n", foreign)
	fmt.Fprintf(f, `{"type":"submit","schema":1,"id":"job-0000`) // torn, no newline
	f.Close()

	j2, stats, err := openJournal(dir, 0)
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer j2.close()
	if stats.liveJobs != 1 || stats.skipped != 1 || stats.wrongSchema != 1 {
		t.Fatalf("stats = %+v, want 1 live, 1 skipped, 1 wrong-schema", stats)
	}
}

// TestJournalRotationCompacts: appends past the size bound rotate into a
// fresh file seeded with only the live state, and the old file is
// removed — finished jobs' records are garbage-collected.
func TestJournalRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 512) // tiny bound: rotate every few records
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		id := fmt.Sprintf("job-%06d", i)
		j.submit(id, SubmitRequest{Test: "SB", Model: "sc"})
		if i != 7 { // keep one job live across every rotation
			j.done(id, StateDone)
		}
	}
	j.close()

	files, _ := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if len(files) != 1 {
		t.Fatalf("after rotation %d files remain: %v", len(files), files)
	}
	// The surviving file holds the last compaction snapshot (the one live
	// job) plus whatever was appended since — far fewer than the 79
	// records written in total.
	data, _ := os.ReadFile(files[0])
	if n := strings.Count(string(data), "\n"); n > 12 {
		t.Fatalf("compacted journal has %d records, want a handful:\n%s", n, data)
	}
	j2, stats, err := openJournal(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if stats.liveJobs != 1 || j2.maxLiveID() != 7 {
		t.Fatalf("stats = %+v maxLiveID = %d, want the one live job-000007", stats, j2.maxLiveID())
	}
}

// TestServiceResumesAfterKill is the service-level crash-safety property:
// a job killed mid-exploration is replayed from the journal on the next
// start, resumes from its last checkpoint (not from scratch), and — run
// to completion — produces exactly the verdict a straight run produces.
// (The equality holds for completed explorations: an execution-capped cut
// selects an exploration-order-dependent subset, which is why the job
// here is unbounded; see the resume-equivalence suite in internal/core.)
func TestServiceResumesAfterKill(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, JournalDir: dir, CheckpointEveryExecs: 100,
		CrashDir: filepath.Join(dir, "crashes")}

	s := mustNew(t, cfg)
	v := submitSource(t, s, manyExecsSource, "sc", 0)

	// Wait for at least two checkpoints to hit the journal, then "kill"
	// the process: the journal freezes on disk mid-job.
	deadline := time.Now().Add(30 * time.Second)
	for s.Metrics().JournalCheckpoints.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint journaled before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	saved := s.Metrics().JournalCheckpoints.Load()
	s.killForTest()
	s.Cancel(v.ID) // stop burning CPU; the canceled record is dropped (dead journal)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart on the same journal directory.
	s2 := mustNew(t, cfg)
	defer s2.Shutdown(context.Background())
	for !s2.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("restarted service never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s2.Metrics().JournalReplayedJobs.Load(); got != 1 {
		t.Fatalf("JournalReplayedJobs = %d, want 1", got)
	}
	if got := s2.Metrics().ResumeSavedExecs.Load(); got < 100 || got > 11550 {
		t.Fatalf("ResumeSavedExecs = %d, want within [100, 11550] (checkpoints were journaled: %d)",
			got, saved)
	}

	done := waitState(t, s2, v.ID)
	if done.State != StateDone {
		t.Fatalf("replayed job finished %s (%s), want done", done.State, done.Err)
	}
	if !done.Resumed {
		t.Fatal("replayed job not marked Resumed")
	}

	// The resumed verdict must be exactly the straight run's.
	p, err := litmus.Parse(manyExecsSource)
	if err != nil {
		t.Fatal(err)
	}
	model, err := memmodel.ByName("sc")
	if err != nil {
		t.Fatal(err)
	}
	straight, err := core.Explore(p, core.Options{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	r := done.Result
	if r == nil {
		t.Fatal("resumed job has no result")
	}
	if r.Executions != straight.Executions || r.ExistsCount != straight.ExistsCount ||
		r.Blocked != straight.Blocked || r.Truncated != straight.Truncated ||
		r.TruncatedReason != straight.TruncatedReason {
		t.Fatalf("resumed verdict diverges from straight run:\nresumed:  execs=%d exists=%d blocked=%d trunc=%v (%s)\nstraight: execs=%d exists=%d blocked=%d trunc=%v (%s)",
			r.Executions, r.ExistsCount, r.Blocked, r.Truncated, r.TruncatedReason,
			straight.Executions, straight.ExistsCount, straight.Blocked, straight.Truncated, straight.TruncatedReason)
	}

	// The finished job is retired: a third start has nothing to replay.
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s3 := mustNew(t, cfg)
	defer s3.Shutdown(context.Background())
	if got := s3.Metrics().JournalReplayedJobs.Load(); got != 0 {
		t.Fatalf("third start replayed %d jobs, want 0", got)
	}
}

// TestVerdictCachePersists: a verdict computed before a graceful restart
// answers the same submission from cache afterwards.
func TestVerdictCachePersists(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, JournalDir: dir, CrashDir: filepath.Join(dir, "crashes")}

	s := mustNew(t, cfg)
	sb, _ := litmus.ByName("SB")
	v, err := s.Submit(SubmitRequest{Program: sb.P, Model: "sc", Test: "SB"})
	if err != nil {
		t.Fatal(err)
	}
	first := waitState(t, s, v.ID)
	if first.State != StateDone || first.CacheHit {
		t.Fatalf("first run: state=%s cacheHit=%v", first.State, first.CacheHit)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, cfg)
	defer s2.Shutdown(context.Background())
	if got := s2.Metrics().VerdictsReloaded.Load(); got < 1 {
		t.Fatalf("VerdictsReloaded = %d, want >= 1", got)
	}
	v2, err := s2.Submit(SubmitRequest{Program: sb.P, Model: "sc", Test: "SB"})
	if err != nil {
		t.Fatal(err)
	}
	if !v2.CacheHit {
		t.Fatal("repeat submission after restart missed the persisted cache")
	}
	if v2.Result.Executions != first.Result.Executions || v2.Result.ExistsCount != first.Result.ExistsCount {
		t.Fatalf("persisted verdict diverges: %+v vs %+v", v2.Result.Stats, first.Result.Stats)
	}
}

// TestVerdictFileSchemaMismatchDropped: a verdicts.json written by a
// different engine schema is dropped wholesale on load.
func TestVerdictFileSchemaMismatchDropped(t *testing.T) {
	dir := t.TempDir()
	stale, _ := json.Marshal(verdictFileJSON{
		Schema:   core.SchemaVersion + 1,
		Verdicts: []storedVerdict{{Key: "k", Stats: core.Stats{Executions: 9}}},
	})
	if err := os.WriteFile(filepath.Join(dir, verdictFile), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{Workers: 1, JournalDir: dir, CrashDir: filepath.Join(dir, "crashes")})
	defer s.Shutdown(context.Background())
	if got := s.Metrics().VerdictsReloaded.Load(); got != 0 {
		t.Fatalf("reloaded %d verdicts from a foreign schema, want 0", got)
	}
	if s.cache.len() != 0 {
		t.Fatalf("cache has %d entries, want 0", s.cache.len())
	}
}
