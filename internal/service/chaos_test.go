package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hmc/internal/core"
	"hmc/internal/faultinject"
	"hmc/internal/litmus"
	"hmc/internal/prog"
)

// chaosSource is the workload for the chaos matrix: 9 writes over 3
// threads = 9!/(3!·3!·3!) = 1680 interleavings — enough executions to
// spread across 4 shards and survive several injected faults, small
// enough for -race.
const chaosSource = "name chaos-writes\n" +
	"T0: W x 1 ; W x 2 ; W x 3\n" +
	"T1: W x 11 ; W x 12 ; W x 13\n" +
	"T2: W x 21 ; W x 22 ; W x 23\n" +
	"exists x=3\n"

// chaosCounters extracts the deterministic merged counters of a result —
// the ones the paper's tables report and sharding must preserve — as
// bytes, so equivalence is asserted byte-for-byte, not field-by-field.
func chaosCounters(t *testing.T, r *core.Result) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]int64{
		"executions":         int64(r.Executions),
		"blocked":            int64(r.Blocked),
		"exists":             int64(r.ExistsCount),
		"states":             int64(r.States),
		"memo_hits":          int64(r.MemoHits),
		"revisits_tried":     int64(r.RevisitsTried),
		"revisits_taken":     int64(r.RevisitsTaken),
		"consistency_checks": int64(r.ConsistencyChecks),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChaosPeersMatrix is the acceptance test for the peer resilience
// layer: a 4-shard job farmed to two peer daemons through the committed
// hostile fault plan (testdata/chaos-plan.json: 30% request drops,
// latency spikes, 5xx bursts, corrupted response bodies, one journal
// fsync error) must complete with merged counters byte-identical to a
// fault-free single-process run — zero legs lost — and the degradation
// path must be visible in the metrics.
func TestChaosPeersMatrix(t *testing.T) {
	plan, err := faultinject.LoadPlan("testdata/chaos-plan.json")
	if err != nil {
		t.Fatalf("committed chaos plan: %v", err)
	}
	p, err := litmus.Parse(chaosSource)
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free single-process baseline.
	base := mustNew(t, Config{Workers: 1, CacheSize: -1})
	defer base.Shutdown(context.Background())
	bv, err := base.Submit(SubmitRequest{Program: p, Model: "sc", Source: chaosSource})
	if err != nil {
		t.Fatal(err)
	}
	if bv = waitState(t, base, bv.ID); bv.State != StateDone || bv.Result == nil {
		t.Fatalf("baseline job: state=%s err=%q", bv.State, bv.Err)
	}

	// Two healthy peer daemons; every injected fault lives on the
	// coordinator's side of the wire (its transport, its journal).
	peer1 := mustNew(t, Config{Workers: 2})
	defer peer1.Shutdown(context.Background())
	ts1 := httptest.NewServer(peer1.Handler())
	t.Cleanup(ts1.Close)
	peer2 := mustNew(t, Config{Workers: 2})
	defer peer2.Shutdown(context.Background())
	ts2 := httptest.NewServer(peer2.Handler())
	t.Cleanup(ts2.Close)

	coord := mustNew(t, Config{
		Workers:        1,
		CacheSize:      -1,
		JournalDir:     t.TempDir(),
		Peers:          []string{ts1.URL, ts2.URL},
		PeerProbeEvery: -1, // passive health only: keeps transport ordinals leg-driven
		ProgressEvery:  10 * time.Millisecond,
		ChaosPlan:      plan,
	})
	defer coord.Shutdown(context.Background())

	cv, err := coord.Submit(SubmitRequest{Program: p, Model: "sc", Source: chaosSource, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cv = waitState(t, coord, cv.ID); cv.State != StateDone || cv.Result == nil {
		t.Fatalf("chaos job: state=%s err=%q", cv.State, cv.Err)
	}

	want, got := chaosCounters(t, bv.Result), chaosCounters(t, cv.Result)
	if string(want) != string(got) {
		t.Errorf("merged counters diverged under faults:\nbaseline: %s\nchaos:    %s", want, got)
	}
	if !cv.Result.Exhaustive() {
		t.Error("chaos run did not explore exhaustively — a leg was lost")
	}

	m := coord.Metrics()
	// The plan corrupts the first six transport responses, so at least one
	// peer leg must have taken the transient-retry rung of the ladder.
	if m.PeerTransientRetries.Load() == 0 {
		t.Error("hmcd_peer_transient_retries_total = 0 under a corrupting 30-percent-drop plan")
	}
	// sync_err_at [2] lands on the job's submit record (ordinals are
	// 1-based; 1 is the open-time snapshot): the journal must have
	// survived it, degraded and counted.
	if m.JournalWriteErrors.Load() == 0 {
		t.Error("hmcd_journal_write_errors_total = 0, want the injected fsync failure counted")
	}
	t.Logf("degradation ladder: retries=%d hedges=%d demotions=%d journal-write-errors=%d",
		m.PeerTransientRetries.Load(), m.ShardLegHedges.Load(),
		m.PeerDemotions.Load(), m.JournalWriteErrors.Load())

	// The final progress snapshot carries a row per peer.
	if cv.Progress == nil {
		t.Fatal("sharded job finished without a progress snapshot")
	}
	if len(cv.Progress.Peers) != 2 {
		t.Fatalf("final snapshot has %d peer rows, want 2: %+v", len(cv.Progress.Peers), cv.Progress.Peers)
	}
}

// TestChaosAllPeersDark: the same sharded run with every peer
// unreachable completes fully locally with identical counters, counts
// its demotions, and says so on the job.
func TestChaosAllPeersDark(t *testing.T) {
	p, err := litmus.Parse(chaosSource)
	if err != nil {
		t.Fatal(err)
	}
	base := mustNew(t, Config{Workers: 1, CacheSize: -1})
	defer base.Shutdown(context.Background())
	bv, err := base.Submit(SubmitRequest{Program: p, Model: "sc", Source: chaosSource})
	if err != nil {
		t.Fatal(err)
	}
	bv = waitState(t, base, bv.ID)

	// A closed listener: connections are refused instantly.
	dead := httptest.NewServer(nil)
	dead.Close()

	s := mustNew(t, Config{
		Workers:        1,
		CacheSize:      -1,
		Peers:          []string{dead.URL},
		PeerProbeEvery: -1,
	})
	defer s.Shutdown(context.Background())
	v, err := s.Submit(SubmitRequest{Program: p, Model: "sc", Source: chaosSource, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v = waitState(t, s, v.ID); v.State != StateDone || v.Result == nil {
		t.Fatalf("all-dark job: state=%s err=%q", v.State, v.Err)
	}
	if string(chaosCounters(t, bv.Result)) != string(chaosCounters(t, v.Result)) {
		t.Error("all-dark counters diverged from the single-process baseline")
	}
	if s.Metrics().PeerDemotions.Load() == 0 {
		t.Error("hmcd_peer_demotions_total = 0 with every peer dark")
	}
	found := false
	for _, d := range v.Diagnostics {
		if strings.HasPrefix(d, "degraded:") {
			found = true
		}
	}
	if !found {
		t.Errorf("job diagnostics do not mention the all-peers-dark degradation: %q", v.Diagnostics)
	}
}

// TestJournalDegradedRecovery exercises the journal's degraded mode at
// the file boundary: an injected ENOSPC on one append flips the journal
// degraded (counted, classified), the record still lands in the live
// map, and the next clean append restores durability.
func TestJournalDegradedRecovery(t *testing.T) {
	plan := &faultinject.Plan{
		Seed: 7,
		// Write ordinals are 1-based: 1 is the open-time compaction
		// snapshot, 2 the first append.
		Journal: &faultinject.FileFaults{WriteErrAt: []int64{2}},
	}
	errs := 0
	j, _, err := openJournalWith(t.TempDir(), 0, journalHooks{
		Wrap:         func(f journalFile) journalFile { return faultinject.WrapFile(f, plan, nil) },
		OnWriteError: func(error) { errs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()

	j.submit("job-000001", SubmitRequest{Test: "SB", Model: "sc"})
	if degraded, why := j.degradedState(); !degraded || why != "disk full (ENOSPC)" {
		t.Fatalf("after injected ENOSPC: degraded=%v why=%q, want true / disk full (ENOSPC)", degraded, why)
	}
	if errs != 1 {
		t.Fatalf("OnWriteError fired %d times, want 1", errs)
	}
	if len(j.takeLive()) != 1 {
		t.Fatal("the failed append must still land in the live map (in-memory journal)")
	}

	j.submit("job-000002", SubmitRequest{Test: "MP", Model: "sc"})
	if degraded, _ := j.degradedState(); degraded {
		t.Fatal("a clean append must clear the degraded state")
	}
	if errs != 1 {
		t.Fatalf("OnWriteError fired %d times after recovery, want still 1", errs)
	}
}

// TestReadyzReportsJournalDegraded: a journal stuck degraded (every
// write failing) keeps the service serving — /readyz stays 200 — but the
// body and the metrics say so.
func TestReadyzReportsJournalDegraded(t *testing.T) {
	plan := &faultinject.Plan{
		Seed: 7,
		// Ordinal 1 (the open-time snapshot) must succeed or New fails;
		// every append after it hits ENOSPC.
		Journal: &faultinject.FileFaults{WriteErrAt: []int64{2, 3, 4, 5, 6, 7, 8, 9, 10, 11}},
	}
	s := mustNew(t, Config{Workers: 1, JournalDir: t.TempDir(), ChaosPlan: plan})
	defer s.Shutdown(context.Background())

	v, err := s.Submit(SubmitRequest{Program: mustTest(t, "SB"), Model: "sc", Test: "SB"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID)

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz = %d while journal-degraded, want 200 (still serving)", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"degraded"`) || !strings.Contains(body, "ENOSPC") {
		t.Errorf("/readyz body does not report the degraded journal: %s", body)
	}
	if s.Metrics().JournalWriteErrors.Load() == 0 {
		t.Error("hmcd_journal_write_errors_total = 0, want the failed appends counted")
	}
}

func mustTest(t *testing.T, name string) *prog.Program {
	t.Helper()
	tc, ok := litmus.ByName(name)
	if !ok {
		t.Fatalf("unknown corpus test %q", name)
	}
	return tc.P
}
