package service

import (
	"context"
	"fmt"

	"hmc/internal/backend"
	"hmc/internal/core"
)

// disagreementError carries a confirmed cross-backend disagreement out of
// an exploration attempt. It takes the error path through runJob's
// terminal switch on purpose: an errored job never reaches the cache.put
// branch, so a disagreeing verdict can never be served twice.
type disagreementError struct {
	out *backend.Outcome
}

func (e *disagreementError) Error() string {
	d := e.out.Disagreement
	return fmt.Sprintf("service: backend disagreement (%s vs %s): %s — verdict quarantined, not served",
		d.Winner.Backend, d.Dissenter.Backend, d.Diff)
}

// alternateBackends returns the non-anchor engines of the portfolio:
// injected mocks in tests, the standard axiomatic + operational pair
// otherwise.
func (s *Service) alternateBackends() []backend.Backend {
	if s.alternates != nil {
		return s.alternates
	}
	return []backend.Backend{&backend.Axenum{}, &backend.Operational{}}
}

// explorePortfolio runs one exploration attempt through the backend
// portfolio. The DFS anchor carries the job's checkpoint and progress
// sinks and its raw core.Result is what the job serves — byte-identical
// to the single-engine path — while the alternates race it and
// cross-attest whatever verdict lands first. A clean run returns the raw
// result; a confirmed disagreement returns a disagreementError that
// quarantines the job.
func (s *Service) explorePortfolio(ctx context.Context, j *Job, copts core.Options) (*core.Result, error) {
	var raw *core.Result
	anchor := &backend.DFS{
		Tune: func(o *core.Options) {
			o.Checkpoint = copts.Checkpoint
			o.Progress = copts.Progress
		},
		OnResult: func(res *core.Result) { raw = res },
	}
	pf := backend.NewPortfolio(backend.PortfolioOptions{
		Backends:       append([]backend.Backend{anchor}, s.alternateBackends()...),
		BackendTimeout: s.cfg.PortfolioBackendTimeout,
		Grace:          s.cfg.PortfolioGrace,
		OnWinner: func(v *backend.Verdict) {
			// Surfaced immediately for job polls; the terminal commit still
			// waits for the cross-checkers.
			s.mu.Lock()
			j.winner = v
			s.mu.Unlock()
		},
	})
	out, err := pf.Run(ctx, j.req.Program, backend.Spec{
		Model:         j.req.Model,
		MaxExecutions: j.req.MaxExecutions,
		MaxEvents:     j.req.MaxEvents,
		MemoryBudget:  j.req.MemoryBudget,
		Workers:       j.req.Workers,
		Symmetry:      j.req.Symmetry,
	})
	if out != nil {
		s.recordAttestation(j, out)
	}
	if err != nil {
		return raw, err
	}
	if out.Disagreement != nil {
		return raw, &disagreementError{out: out}
	}
	return raw, nil
}

// recordAttestation publishes the attestation trail on the job and folds
// the per-backend counters and latency observations into the metrics.
func (s *Service) recordAttestation(j *Job, out *backend.Outcome) {
	for _, att := range out.Attempts {
		if att.Status == backend.AttemptSkipped {
			continue
		}
		s.metrics.BackendRuns.Add(1)
		switch att.Status {
		case backend.AttemptWon:
			s.metrics.BackendWins.Add(1)
		case backend.AttemptTimeout:
			s.metrics.BackendTimeouts.Add(1)
		case backend.AttemptDisagreed:
			s.metrics.BackendDisagreements.Add(1)
		}
		s.metrics.observeBackendLatency(att.Backend, att.Elapsed.Seconds())
	}
	s.mu.Lock()
	j.attestation = out.Attempts
	if out.Verdict != nil {
		j.winner = out.Verdict
	}
	s.mu.Unlock()
}
