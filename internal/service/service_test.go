package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hmc/internal/core"
	"hmc/internal/eg"
	"hmc/internal/gen"
	"hmc/internal/litmus"
	"hmc/internal/memmodel"
	"hmc/internal/prog"
)

// mustNew starts a service or fails the test (New only errors on an
// unusable journal directory, which these configs never hit).
func mustNew(t testing.TB, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// waitState polls until job id reaches a terminal state.
func waitState(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

func TestSubmitRunsToVerdict(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	mp, _ := litmus.ByName("MP")
	v, err := s.Submit(SubmitRequest{Program: mp.P, Model: "imm"})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("state %s, result %v (err %q)", v.State, v.Result, v.Err)
	}
	want, err := core.Explore(mp.P, core.Options{Model: mustModel(t, "imm")})
	if err != nil {
		t.Fatal(err)
	}
	if v.Result.Executions != want.Executions || (v.Result.ExistsCount > 0) != (want.ExistsCount > 0) {
		t.Errorf("service verdict %d/%d diverges from direct Explore %d/%d",
			v.Result.Executions, v.Result.ExistsCount, want.Executions, want.ExistsCount)
	}
	if !v.Result.Exhaustive() {
		t.Error("an unbounded small job must be exhaustive")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	mp, _ := litmus.ByName("MP")
	if _, err := s.Submit(SubmitRequest{Program: nil, Model: "imm"}); err == nil {
		t.Error("nil program must be rejected")
	}
	if _, err := s.Submit(SubmitRequest{Program: mp.P, Model: "not-a-model"}); err == nil {
		t.Error("unknown model must be rejected")
	}
}

func TestVerdictCacheHit(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	sb, _ := litmus.ByName("SB")
	first, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}
	first = waitState(t, s, first.ID)
	if first.CacheHit {
		t.Fatal("first submission cannot be a cache hit")
	}
	second, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.State != StateDone {
		t.Fatalf("second submission must be served from cache: %+v", second)
	}
	if second.Result.Executions != first.Result.Executions {
		t.Error("cached result diverges")
	}
	// Different model or options must miss.
	third, err := s.Submit(SubmitRequest{Program: sb.P, Model: "sc"})
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("different model must not hit the cache")
	}
	waitState(t, s, third.ID)
	if got := s.Metrics().CacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

func TestCacheKeyIgnoresName(t *testing.T) {
	// Fingerprint ignores Name/LocNames: the same program under another
	// name is the same cache entry.
	a := gen.SBN(3)
	b := gen.SBN(3)
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint must ignore the program name")
	}
	if gen.SBN(3).Fingerprint() == gen.SBN(4).Fingerprint() {
		t.Fatal("different programs must not collide")
	}
}

func TestDeadlineInterruptsJob(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	// inc(4,3) is far too big to finish in 20ms; the deadline must stop
	// it mid-exploration with partial stats, job state still "done".
	v, err := s.Submit(SubmitRequest{Program: gen.IncN(4, 3), Model: "sc", Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateDone {
		t.Fatalf("state %s, err %q", v.State, v.Err)
	}
	if !v.Result.Interrupted {
		t.Fatal("result must be marked interrupted")
	}
	if v.Result.Exhaustive() {
		t.Fatal("interrupted result cannot claim exhaustiveness")
	}
	if s.Metrics().JobsInterrupted.Load() != 1 {
		t.Error("interrupted counter not bumped")
	}
	// Interrupted results must not poison the cache.
	again, err := s.Submit(SubmitRequest{Program: gen.IncN(4, 3), Model: "sc", Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Fatal("interrupted result must not be cached")
	}
	waitState(t, s, again.ID)
}

func TestCancelRunningJob(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	v, err := s.Submit(SubmitRequest{Program: gen.IncN(4, 3), Model: "sc"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running, then cancel.
	for {
		cur, _ := s.Get(v.ID)
		if cur.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(v.ID) {
		t.Fatal("cancel of a running job must succeed")
	}
	v = waitState(t, s, v.ID)
	if v.State != StateCanceled {
		t.Fatalf("state %s, want canceled", v.State)
	}
	if v.Result == nil || !v.Result.Interrupted {
		t.Error("canceled job must retain its partial interrupted result")
	}
	if s.Cancel(v.ID) {
		t.Error("cancel of a terminal job must report false")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueSize: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		s.Shutdown(ctx) // cancels the stuffed jobs
	}()

	// One long job occupies the worker, a second fills the queue slot,
	// and the third must bounce.
	big := gen.IncN(4, 3)
	first, err := s.Submit(SubmitRequest{Program: big, Model: "sc"})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if v, _ := s.Get(first.ID); v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(SubmitRequest{Program: big, Model: "tso"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(SubmitRequest{Program: big, Model: "pso"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if s.Metrics().JobsRejected.Load() == 0 {
		t.Error("rejected counter not bumped")
	}
}

func TestShutdownDrainsQueuedJobs(t *testing.T) {
	s := mustNew(t, Config{Workers: 2})
	sb, _ := litmus.ByName("SB")
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		v, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		v, ok := s.Get(id)
		if !ok || v.State != StateDone {
			t.Errorf("job %s not drained to done: %+v", id, v)
		}
	}
	if _, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso"}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-shutdown submit: want ErrDraining, got %v", err)
	}
}

func TestJobHistoryEviction(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, JobHistory: 3, CacheSize: -1})
	defer s.Shutdown(context.Background())

	sb, _ := litmus.ByName("SB")
	var last string
	for i := 0; i < 6; i++ {
		v, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso"})
		if err != nil {
			t.Fatal(err)
		}
		last = v.ID
		waitState(t, s, v.ID)
	}
	if got := len(s.Jobs()); got > 3 {
		t.Errorf("history retained %d jobs, cap is 3", got)
	}
	if _, ok := s.Get(last); !ok {
		t.Error("most recent job must survive eviction")
	}
}

func TestVerdictCacheLRU(t *testing.T) {
	c := newVerdictCache(2)
	r := &core.Result{}
	c.put("a", r)
	c.put("b", r)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a must be resident")
	}
	c.put("c", r) // evicts b (least recently used)
	if _, ok := c.get("b"); ok {
		t.Error("b must have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s must be resident", k)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Disabled cache is inert.
	d := newVerdictCache(-1)
	d.put("x", r)
	if _, ok := d.get("x"); ok {
		t.Error("disabled cache must not store")
	}
}

func mustModel(t *testing.T, name string) memmodel.Model {
	t.Helper()
	m, err := memmodel.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubmitAttachesDiagnostics(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	// A store-buffering shape with an LW fence: under tso the fence is a
	// documented no-op, so the submission must carry a useless-fence
	// diagnostic and bump the vet-findings counter.
	b := prog.NewBuilder("diag")
	x, y := b.Loc("x"), b.Loc("y")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t0.Fence(eg.FenceLW)
	t0.Load(y)
	t1 := b.Thread()
	t1.Store(y, prog.Const(1))
	t1.Load(x)
	p := b.MustBuild()

	v, err := s.Submit(SubmitRequest{Program: p, Model: "tso"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	racy := false
	for _, d := range v.Diagnostics {
		if strings.Contains(d, "useless-fence") {
			found = true
		}
		if strings.Contains(d, "racy-pair") {
			racy = true
		}
	}
	if !found {
		t.Errorf("submission diagnostics lack useless-fence: %v", v.Diagnostics)
	}
	// Both threads touch x and y through plain accesses with a write on
	// each side, so the racy-pair lint must ride along on the job too.
	if !racy {
		t.Errorf("submission diagnostics lack racy-pair: %v", v.Diagnostics)
	}
	if got := s.Metrics().VetFindings.Load(); got < 1 {
		t.Errorf("VetFindings = %d, want >= 1", got)
	}
	done := waitState(t, s, v.ID)
	if len(done.Diagnostics) != len(v.Diagnostics) {
		t.Errorf("diagnostics changed across the job lifecycle: %v vs %v", done.Diagnostics, v.Diagnostics)
	}
}
