package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"hmc/internal/litmus"
)

// TestWriteJSONEncodeFailure is the regression test for the swallowed
// encoder error: a payload that cannot marshal (NaN) must produce a clean
// 500 with a *valid* JSON error body — not a truncated 200 — and bump
// hmcd_http_encode_errors_total.
func TestWriteJSONEncodeFailure(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	rec := httptest.NewRecorder()
	s.writeJSON(rec, 200, map[string]any{"rate": math.NaN()})
	if rec.Code != 500 {
		t.Fatalf("encode failure answered %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("fallback body is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if !strings.Contains(body["error"], "encoding failed") {
		t.Errorf("fallback error %q does not name the encode failure", body["error"])
	}
	if got := s.metrics.HTTPEncodeErrors.Load(); got != 1 {
		t.Errorf("HTTPEncodeErrors = %d, want 1", got)
	}

	// The success path still emits the requested status and parseable JSON.
	rec2 := httptest.NewRecorder()
	s.writeJSON(rec2, 201, map[string]string{"ok": "yes"})
	if rec2.Code != 201 {
		t.Errorf("success path answered %d, want 201", rec2.Code)
	}
	var ok map[string]string
	if err := json.Unmarshal(rec2.Body.Bytes(), &ok); err != nil || ok["ok"] != "yes" {
		t.Errorf("success body broken: %v %q", err, rec2.Body.String())
	}
	if got := s.metrics.HTTPEncodeErrors.Load(); got != 1 {
		t.Errorf("success path must not count an encode error (got %d)", got)
	}
}

// TestEvictedVerdictNotServedAfterReload pins the cache-eviction counter
// and the persistence interaction: with CacheSize 1, caching a second
// verdict evicts the first (counted), the persisted file holds only the
// survivor, and after a restart the evicted program is a cache miss that
// re-explores — never a stale hit.
func TestEvictedVerdictNotServedAfterReload(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, CacheSize: 1, JournalDir: dir}
	s := mustNew(t, cfg)

	sb, _ := litmus.ByName("SB")
	mp, _ := litmus.ByName("MP")
	v, err := s.Submit(SubmitRequest{Program: sb.P, Model: "sc", Test: "SB"})
	if err != nil {
		t.Fatal(err)
	}
	if v = waitState(t, s, v.ID); v.State != StateDone {
		t.Fatalf("SB: %s (%s)", v.State, v.Err)
	}
	if v, err = s.Submit(SubmitRequest{Program: mp.P, Model: "sc", Test: "MP"}); err != nil {
		t.Fatal(err)
	}
	if v = waitState(t, s, v.ID); v.State != StateDone {
		t.Fatalf("MP: %s (%s)", v.State, v.Err)
	}
	if got := s.metrics.CacheEvictions.Load(); got != 1 {
		t.Errorf("CacheEvictions = %d, want 1 (MP must evict SB from a size-1 cache)", got)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, cfg)
	defer s2.Shutdown(context.Background())
	if got := s2.Metrics().VerdictsReloaded.Load(); got != 1 {
		t.Errorf("VerdictsReloaded = %d, want 1 (only the surviving entry persists)", got)
	}
	if v, err = s2.Submit(SubmitRequest{Program: mp.P, Model: "sc", Test: "MP"}); err != nil {
		t.Fatal(err)
	}
	if !v.CacheHit {
		t.Error("MP survived the eviction and the restart: must be a cache hit")
	}
	if v, err = s2.Submit(SubmitRequest{Program: sb.P, Model: "sc", Test: "SB"}); err != nil {
		t.Fatal(err)
	}
	if v.CacheHit {
		t.Fatal("evicted SB verdict served from cache after reload")
	}
	if v = waitState(t, s2, v.ID); v.State != StateDone || v.Result == nil {
		t.Fatalf("SB re-exploration failed: %s (%s)", v.State, v.Err)
	}
}
