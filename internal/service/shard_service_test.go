package service

import (
	"context"
	"testing"

	"hmc/internal/litmus"
)

// TestShardedSubmitMatchesSingle: a sharded job's merged verdict and
// counts are identical to the single-explorer run of the same program,
// and the active-shards gauge nets back to zero when the fleet drains.
func TestShardedSubmitMatchesSingle(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, CacheSize: -1}) // no cache: both jobs must really run
	defer s.Shutdown(context.Background())

	p, err := litmus.Parse(manyExecsSource)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Submit(SubmitRequest{Program: p, Model: "sc", Source: manyExecsSource})
	if err != nil {
		t.Fatal(err)
	}
	plain = waitState(t, s, plain.ID)
	sharded, err := s.Submit(SubmitRequest{Program: p, Model: "sc", Source: manyExecsSource, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	sharded = waitState(t, s, sharded.ID)

	if plain.State != StateDone || sharded.State != StateDone {
		t.Fatalf("states: plain=%s sharded=%s (errs %q / %q)", plain.State, sharded.State, plain.Err, sharded.Err)
	}
	if sharded.CacheHit {
		t.Fatal("cache disabled, yet the sharded submission hit it")
	}
	pr, sr := plain.Result, sharded.Result
	if pr == nil || sr == nil {
		t.Fatalf("missing results: plain=%v sharded=%v", pr, sr)
	}
	if pr.Executions != sr.Executions || pr.Blocked != sr.Blocked ||
		pr.ExistsCount != sr.ExistsCount || pr.States != sr.States ||
		pr.MemoHits != sr.MemoHits || !sr.Exhaustive() {
		t.Fatalf("sharded run diverged:\nplain:   execs=%d blocked=%d exists=%d states=%d memo=%d\nsharded: execs=%d blocked=%d exists=%d states=%d memo=%d exhaustive=%v",
			pr.Executions, pr.Blocked, pr.ExistsCount, pr.States, pr.MemoHits,
			sr.Executions, sr.Blocked, sr.ExistsCount, sr.States, sr.MemoHits, sr.Exhaustive())
	}
	if got := s.metrics.ShardsActive.Load(); got != 0 {
		t.Fatalf("hmcd_shards_active = %d after all jobs drained, want 0", got)
	}
}

// TestShardedSubmitValidation: the shard count is bounded.
func TestShardedSubmitValidation(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	mp, _ := litmus.ByName("MP")
	if _, err := s.Submit(SubmitRequest{Program: mp.P, Model: "imm", Shards: -1}); err == nil {
		t.Error("negative shards must be rejected")
	}
	if _, err := s.Submit(SubmitRequest{Program: mp.P, Model: "imm", Shards: MaxShards + 1}); err == nil {
		t.Errorf("shards > %d must be rejected", MaxShards)
	}
	if _, err := s.Submit(SubmitRequest{Program: mp.P, Model: "imm", Shards: 2}); err != nil {
		t.Errorf("shards=2 rejected: %v", err)
	}
}

// TestShardedCacheKey: an execution-bounded run covers different ground
// per shard count (the bound applies per shard), so bounded sharded and
// unsharded submissions must not share a verdict-cache entry; unbounded
// ones explore everything either way and do share.
func TestShardedCacheKey(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Shutdown(context.Background())

	sb, _ := litmus.ByName("SB")
	bounded, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso", Test: "SB", MaxExecutions: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, bounded.ID)
	boundedSharded, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso", Test: "SB", MaxExecutions: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if boundedSharded = waitState(t, s, boundedSharded.ID); boundedSharded.CacheHit {
		t.Error("bounded sharded submission reused the unsharded verdict; per-shard MaxExecutions changes coverage")
	}

	full, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso", Test: "SB", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, full.ID)
	fullPlain, err := s.Submit(SubmitRequest{Program: sb.P, Model: "tso", Test: "SB"})
	if err != nil {
		t.Fatal(err)
	}
	if fullPlain = waitState(t, s, fullPlain.ID); !fullPlain.CacheHit {
		t.Error("unbounded runs have identical totals across shard counts; the verdict should be shared")
	}
}

// TestJournalRecordsShards: the shard count of a live job survives the
// journal round trip, so a crashed daemon resumes the job as the same
// sharded exploration it accepted.
func TestJournalRecordsShards(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	j.submit("job-000001", SubmitRequest{Test: "SB", Model: "sc", Shards: 4})
	j.close()

	j2, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	live := j2.takeLive()
	if len(live) != 1 || live[0].submit.Shards != 4 {
		t.Fatalf("replayed live jobs = %+v, want one with shards=4", live)
	}
}
