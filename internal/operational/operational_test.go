package operational

import (
	"strings"
	"testing"

	"hmc/internal/eg"
	"hmc/internal/litmus"
	"hmc/internal/prog"
)

func run(t *testing.T, p *prog.Program, opts Options) *Result {
	t.Helper()
	res, err := Explore(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSCTraceCountSB(t *testing.T) {
	p := litmus.SB(eg.FenceNone)
	res := run(t, p, Options{Level: SC})
	// Two visible ops per thread: C(4,2) = 6 interleavings.
	if res.Traces != 6 {
		t.Fatalf("SB under SC machine: %d traces, want 6", res.Traces)
	}
	if res.ExistsCount != 0 {
		t.Fatal("SC machine must not observe SB weak outcome")
	}
	if len(res.Finals) != 3 {
		t.Fatalf("SB under SC: %d distinct finals, want 3", len(res.Finals))
	}
}

func TestTSOObservesSB(t *testing.T) {
	p := litmus.SB(eg.FenceNone)
	res := run(t, p, Options{Level: TSO})
	if res.ExistsCount == 0 {
		t.Fatal("TSO machine must observe SB weak outcome")
	}
	if len(res.Finals) != 4 {
		t.Fatalf("SB under TSO: %d distinct finals, want 4", len(res.Finals))
	}
}

func TestTSOFenceRestoresSB(t *testing.T) {
	p := litmus.SB(eg.FenceFull)
	res := run(t, p, Options{Level: TSO})
	if res.ExistsCount != 0 {
		t.Fatal("SB+mfence must be forbidden on the TSO machine")
	}
}

func TestTSOForbidsMPButPSOAllows(t *testing.T) {
	p := litmus.MP(eg.FenceNone, eg.FenceNone, litmus.MPNone)
	if res := run(t, p, Options{Level: TSO}); res.ExistsCount != 0 {
		t.Fatal("TSO machine must not reorder stores (MP)")
	}
	if res := run(t, p, Options{Level: PSO}); res.ExistsCount == 0 {
		t.Fatal("PSO machine must observe MP weak outcome")
	}
}

func TestPSOLwFenceRestoresMP(t *testing.T) {
	p := litmus.MP(eg.FenceLW, eg.FenceNone, litmus.MPNone)
	// Writer-side lw alone suffices on PSO (reader reads are in order).
	if res := run(t, p, Options{Level: PSO}); res.ExistsCount != 0 {
		t.Fatal("MP+lw writer must be forbidden on the PSO machine")
	}
}

func TestPSOLwDoesNotRestoreSB(t *testing.T) {
	p := litmus.SB(eg.FenceLW)
	if res := run(t, p, Options{Level: PSO}); res.ExistsCount == 0 {
		t.Fatal("lw fences must not forbid SB on PSO (no W→R ordering)")
	}
}

func TestPSO2Plus2W(t *testing.T) {
	if res := run(t, litmus.TwoPlusTwoW(eg.FenceNone), Options{Level: PSO}); res.ExistsCount == 0 {
		t.Fatal("PSO machine must observe 2+2W")
	}
	if res := run(t, litmus.TwoPlusTwoW(eg.FenceLW), Options{Level: PSO}); res.ExistsCount != 0 {
		t.Fatal("2+2W+lw must be forbidden on PSO")
	}
	if res := run(t, litmus.TwoPlusTwoW(eg.FenceNone), Options{Level: TSO}); res.ExistsCount != 0 {
		t.Fatal("2+2W must be forbidden on TSO")
	}
}

func TestLBForbiddenOnAllMachines(t *testing.T) {
	// No store-buffer machine produces load buffering: that is exactly why
	// graph-based checking for hardware models goes beyond them.
	p := litmus.LB(litmus.LBNone)
	for _, lvl := range []Level{SC, TSO, PSO} {
		if res := run(t, p, Options{Level: lvl}); res.ExistsCount != 0 {
			t.Errorf("LB weak outcome observed on %v machine", lvl)
		}
	}
}

func TestRMWAtomicity(t *testing.T) {
	res := run(t, litmus.Inc(2), Options{Level: TSO})
	if res.ExistsCount != 0 {
		t.Fatal("atomic increments lost an update on the TSO machine")
	}
	for _, fs := range res.Finals {
		if fs.Mem[0] != 2 {
			t.Fatalf("inc(2) final x = %d, want 2", fs.Mem[0])
		}
	}
}

func TestCASOnlyOneWinner(t *testing.T) {
	res := run(t, litmus.CASAgree(), Options{Level: PSO})
	if res.ExistsCount != 0 {
		t.Fatal("both CAS succeeded on the PSO machine")
	}
}

func TestMemoMatchesPlainFinals(t *testing.T) {
	for _, name := range []string{"SB", "MP", "IRIW", "inc(2)"} {
		tc, ok := litmus.ByName(name)
		if !ok {
			t.Fatalf("missing corpus entry %s", name)
		}
		for _, lvl := range []Level{SC, TSO, PSO} {
			plain := run(t, tc.P, Options{Level: lvl})
			memo := run(t, tc.P, Options{Level: lvl, Memo: true})
			pk := strings.Join(plain.FinalKeys(), ";")
			mk := strings.Join(memo.FinalKeys(), ";")
			if pk != mk {
				t.Errorf("%s on %v: memo finals differ:\nplain: %s\nmemo:  %s", name, lvl, pk, mk)
			}
			if memo.Traces > plain.Traces {
				t.Errorf("%s on %v: memoized explored more terminals than plain", name, lvl)
			}
		}
	}
}

func TestBlockedRuns(t *testing.T) {
	b := prog.NewBuilder("assume-block")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	r := t1.Load(x)
	t1.Assume(prog.Eq(prog.R(r), prog.Const(1)))
	p := b.MustBuild()
	res := run(t, p, Options{Level: SC})
	if res.Blocked == 0 {
		t.Fatal("expected blocked runs when the assume fails")
	}
	for _, fs := range res.Finals {
		if fs.Reg(1, r) != 1 {
			t.Fatalf("final with failed assume leaked: %v", fs)
		}
	}
}

func TestAssertionDetected(t *testing.T) {
	b := prog.NewBuilder("bad-assert")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	t1 := b.Thread()
	r := t1.Load(x)
	t1.Assert(prog.Eq(prog.R(r), prog.Const(0)), "x observed as 1")
	p := b.MustBuild()
	res := run(t, p, Options{Level: SC})
	if len(res.Errors) == 0 {
		t.Fatal("expected assertion failures")
	}
	resStop := run(t, p, Options{Level: SC, StopOnError: true})
	if len(resStop.Errors) != 1 {
		t.Fatalf("StopOnError: %d errors, want 1", len(resStop.Errors))
	}
}

func TestMaxTracesTruncates(t *testing.T) {
	p := litmus.IRIW(eg.FenceNone, false)
	res := run(t, p, Options{Level: SC, MaxTraces: 7})
	if !res.Truncated || res.Traces != 7 {
		t.Fatalf("truncation failed: %v traces=%d", res.Truncated, res.Traces)
	}
}

func TestStepBoundBlocks(t *testing.T) {
	b := prog.NewBuilder("spin")
	x := b.Loc("x")
	t0 := b.Thread()
	top := t0.Here()
	r := t0.Load(x)
	t0.Branch(prog.Eq(prog.R(r), prog.Const(0)), top)
	p := b.MustBuild()
	res := run(t, p, Options{Level: SC, MaxSteps: 50})
	if res.Blocked == 0 {
		t.Fatal("spinloop must exhaust the step bound and block")
	}
}

func TestBufferForwarding(t *testing.T) {
	// T0: Wx=1; r=Rx — must read its own buffered store (1) on TSO even
	// before commit.
	b := prog.NewBuilder("fwd")
	x := b.Loc("x")
	t0 := b.Thread()
	t0.Store(x, prog.Const(1))
	r := t0.Load(x)
	p := b.MustBuild()
	res := run(t, p, Options{Level: TSO})
	for _, fs := range res.Finals {
		if fs.Reg(0, r) != 1 {
			t.Fatalf("store forwarding broken: read %d", fs.Reg(0, r))
		}
	}
}

func TestLevelString(t *testing.T) {
	if SC.String() != "sc" || TSO.String() != "tso" || PSO.String() != "pso" {
		t.Fatal("Level naming broken")
	}
}
