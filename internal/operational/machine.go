// Package operational implements explicit-state operational explorers for
// SC, x86-TSO and PSO: the baseline family HMC-style graph exploration is
// compared against (Nidhugg and friends explore exactly these machines).
//
// The machines are standard:
//
//   - SC: threads take turns performing atomic memory operations.
//   - TSO: each thread owns a FIFO store buffer; loads forward from the
//     youngest buffered store to the same location; buffered stores commit
//     to memory nondeterministically in order; full fences and RMWs drain
//     the buffer.
//   - PSO: same buffer, but entries to *different* locations may commit out
//     of order; an lw fence inserts a barrier entry that store commits
//     cannot overtake (restoring W→W order only).
//
// Exploration is a DFS over all scheduling and commit choices, optionally
// with state memoization (for use as a final-state oracle rather than a
// trace counter).
package operational

import (
	"fmt"
	"strings"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// Level selects the machine.
type Level int

const (
	SC Level = iota
	TSO
	PSO
)

func (l Level) String() string {
	switch l {
	case SC:
		return "sc"
	case TSO:
		return "tso"
	case PSO:
		return "pso"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// bufEntry is one store-buffer slot: a pending store, or a W→W barrier.
type bufEntry struct {
	barrier bool
	loc     eg.Loc
	val     int64
}

// threadState is one thread's execution state.
type threadState struct {
	pc      int
	regs    []int64
	steps   int
	done    bool
	blocked bool // assume failed or step bound exceeded: dead
	buf     []bufEntry
}

func (t *threadState) clone() threadState {
	c := *t
	c.regs = append([]int64(nil), t.regs...)
	c.buf = append([]bufEntry(nil), t.buf...)
	return c
}

// state is a full machine configuration.
type state struct {
	mem     []int64
	threads []threadState
}

func (s *state) clone() *state {
	c := &state{
		mem:     append([]int64(nil), s.mem...),
		threads: make([]threadState, len(s.threads)),
	}
	for i := range s.threads {
		c.threads[i] = s.threads[i].clone()
	}
	return c
}

// key canonicalizes the state for memoization.
func (s *state) key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "m%v", s.mem)
	for i := range s.threads {
		t := &s.threads[i]
		fmt.Fprintf(&sb, "|t%d:%d,%v,%v,%v,%v", i, t.pc, t.regs, t.done, t.blocked, t.buf)
	}
	return sb.String()
}

func initialState(p *prog.Program) *state {
	s := &state{
		mem:     make([]int64, p.NumLocs),
		threads: make([]threadState, len(p.Threads)),
	}
	for i := range s.threads {
		s.threads[i].regs = make([]int64, p.NumRegs[i])
	}
	return s
}

// loadValue reads loc as thread t sees it: youngest buffered store to loc,
// else memory.
func (s *state) loadValue(t int, loc eg.Loc) int64 {
	buf := s.threads[t].buf
	for i := len(buf) - 1; i >= 0; i-- {
		if !buf[i].barrier && buf[i].loc == loc {
			return buf[i].val
		}
	}
	return s.mem[loc]
}

// bufferEmpty reports whether thread t has no pending stores (barriers do
// not count: a barrier with nothing before it is inert).
func (s *state) bufferEmpty(t int) bool {
	for _, e := range s.threads[t].buf {
		if !e.barrier {
			return false
		}
	}
	return true
}

// commitable returns the buffer indices of thread t that may commit next
// under the given level: under TSO only the head; under PSO any entry not
// preceded by a barrier or a same-location store.
func (s *state) commitable(level Level, t int) []int {
	buf := s.threads[t].buf
	var out []int
	for i, e := range buf {
		if e.barrier {
			if level == PSO {
				continue // barriers block what follows; skip as candidates
			}
			break
		}
		out = append(out, i)
		if level == TSO {
			break
		}
	}
	if level == PSO {
		// Filter: entry i commits only if no earlier barrier and no
		// earlier same-location entry.
		filtered := out[:0]
		for _, i := range out {
			ok := true
			for j := 0; j < i; j++ {
				if buf[j].barrier || buf[j].loc == buf[i].loc {
					ok = false
					break
				}
			}
			if ok {
				filtered = append(filtered, i)
			}
		}
		out = filtered
	}
	return out
}

// commit pops buffer entry i of thread t into memory, discarding any
// leading barriers that become inert.
func (s *state) commit(t, i int) {
	th := &s.threads[t]
	e := th.buf[i]
	th.buf = append(th.buf[:i], th.buf[i+1:]...)
	s.mem[e.loc] = e.val
	for len(th.buf) > 0 && th.buf[0].barrier {
		th.buf = th.buf[1:]
	}
}

// finalState converts a terminal machine state into the program-level
// observable state.
func (s *state) finalState() prog.FinalState {
	fs := prog.FinalState{Mem: append([]int64(nil), s.mem...)}
	for i := range s.threads {
		fs.Regs = append(fs.Regs, append([]int64(nil), s.threads[i].regs...))
	}
	return fs
}
