package operational

import (
	"context"
	"fmt"
	"sort"

	"hmc/internal/eg"
	"hmc/internal/prog"
)

// Options configures an operational exploration.
type Options struct {
	// Level selects the machine (SC, TSO, PSO).
	Level Level
	// MaxSteps bounds each thread's instruction count (≤0: default).
	MaxSteps int
	// MaxTraces aborts after this many complete traces (0 = unlimited).
	MaxTraces int
	// Memo enables state memoization: each machine state is explored once.
	// This makes the explorer a fast, complete *final-state oracle* but
	// makes Traces count distinct explored states' terminal visits rather
	// than interleavings.
	Memo bool
	// StopOnError aborts at the first assertion failure.
	StopOnError bool
	// Context, when non-nil, lets callers cancel the exploration. The
	// visit loop polls it periodically; on cancellation the result is
	// marked Interrupted and the partial counters are returned.
	Context context.Context
}

// DefaultMaxSteps bounds per-thread execution.
const DefaultMaxSteps = 4096

// Result aggregates an operational exploration.
type Result struct {
	Traces      int // complete maximal runs (the Nidhugg-style count)
	Blocked     int // runs ending with a dead (assume-failed/bounded) thread
	States      int // states visited (distinct when Memo)
	ExistsCount int // complete runs satisfying the Exists clause
	Errors      []string
	Truncated   bool
	Interrupted bool // Options.Context was cancelled mid-exploration
	// Finals maps canonical final-state keys to one representative.
	Finals map[string]prog.FinalState
}

// FinalKeys returns the sorted canonical final-state keys (for
// cross-validation against the graph-based explorer).
func (r *Result) FinalKeys() []string {
	keys := make([]string, 0, len(r.Finals))
	for k := range r.Finals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FinalKey canonicalizes a final state.
func FinalKey(fs prog.FinalState) string {
	return fmt.Sprintf("%v|%v", fs.Mem, fs.Regs)
}

// Explore runs the operational machine of opts.Level over p.
func Explore(p *prog.Program, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	e := &opExplorer{p: p, opts: opts, res: &Result{Finals: map[string]prog.FinalState{}}}
	if opts.Memo {
		e.seen = map[string]bool{}
	}
	e.visit(initialState(p))
	return e.res, nil
}

type opExplorer struct {
	p     *prog.Program
	opts  Options
	res   *Result
	seen  map[string]bool
	stop  bool
	polls int
}

// cancelled polls Options.Context (one select every pollEvery visits) and
// raises the stop flag when it is done, so a portfolio deadline or a job
// cancellation unwinds the recursion promptly.
const pollEvery = 256

func (e *opExplorer) cancelled() bool {
	if e.stop {
		return true
	}
	if e.opts.Context == nil {
		return false
	}
	e.polls++
	if e.polls%pollEvery != 1 {
		return false
	}
	select {
	case <-e.opts.Context.Done():
		e.res.Interrupted = true
		e.stop = true
		return true
	default:
		return false
	}
}

// runLocal advances thread t through register-only instructions. It stops
// at a visible (memory/fence) instruction, at thread end, or on a
// blocking/erroring local instruction. It returns an error message for
// assertion failures.
func (e *opExplorer) runLocal(s *state, t int) (errMsg string) {
	th := &s.threads[t]
	code := e.p.Threads[t]
	for !th.done && !th.blocked {
		if th.pc >= len(code) {
			th.done = true
			return ""
		}
		if th.steps >= e.opts.MaxSteps {
			th.blocked = true
			return ""
		}
		in := code[th.pc]
		switch in.Op {
		case prog.IMov:
			th.regs[in.Dst] = in.Val.Eval(th.regs, nil)
		case prog.IBranch:
			if in.Cond.Eval(th.regs, nil) != 0 {
				th.pc = in.Target
				th.steps++
				continue
			}
		case prog.IJmp:
			th.pc = in.Target
			th.steps++
			continue
		case prog.IAssume:
			if in.Cond.Eval(th.regs, nil) == 0 {
				th.blocked = true
				return ""
			}
		case prog.IAssert:
			if in.Cond.Eval(th.regs, nil) == 0 {
				msg := in.Msg
				if msg == "" {
					msg = "assertion failed"
				}
				return fmt.Sprintf("thread %d: %s", t, msg)
			}
		default:
			return "" // visible instruction: stop here
		}
		th.pc++
		th.steps++
	}
	return ""
}

// normalize runs every thread's local instructions. Local steps commute
// with everything, so collapsing them shrinks the state space without
// losing behaviours.
func (e *opExplorer) normalize(s *state) (errMsg string) {
	for t := range s.threads {
		if msg := e.runLocal(s, t); msg != "" {
			return msg
		}
	}
	return ""
}

// choice is one enabled transition.
type choice struct {
	thread int
	commit int // buffer index to commit, or -1 for an instruction step
}

// enabled lists the transitions available in s.
func (e *opExplorer) enabled(s *state) []choice {
	var out []choice
	for t := range s.threads {
		th := &s.threads[t]
		if !th.done && !th.blocked && th.pc < len(e.p.Threads[t]) {
			in := e.p.Threads[t][th.pc]
			ready := true
			switch in.Op {
			case prog.ICAS, prog.IFAdd, prog.IXchg:
				ready = s.bufferEmpty(t)
			case prog.IFence:
				if in.Fence == eg.FenceFull {
					ready = s.bufferEmpty(t)
				}
			}
			if ready {
				out = append(out, choice{thread: t, commit: -1})
			}
		}
		for _, i := range s.commitable(e.opts.Level, t) {
			out = append(out, choice{thread: t, commit: i})
		}
	}
	return out
}

// apply executes choice c on a clone of s and returns it, or nil if the
// step errored (recorded).
func (e *opExplorer) apply(s *state, c choice) *state {
	ns := s.clone()
	if c.commit >= 0 {
		ns.commit(c.thread, c.commit)
		return ns
	}
	t := c.thread
	th := &ns.threads[t]
	in := e.p.Threads[t][th.pc]
	evalLoc := func(a *prog.Expr) (eg.Loc, bool) {
		v := a.Eval(th.regs, nil)
		if v < 0 || v >= int64(e.p.NumLocs) {
			e.recordError(fmt.Sprintf("thread %d: address %d out of range", t, v))
			return 0, false
		}
		return eg.Loc(v), true
	}
	switch in.Op {
	case prog.ILoad:
		loc, ok := evalLoc(in.Addr)
		if !ok {
			return nil
		}
		th.regs[in.Dst] = ns.loadValue(t, loc)
	case prog.IStore:
		loc, ok := evalLoc(in.Addr)
		if !ok {
			return nil
		}
		val := in.Val.Eval(th.regs, nil)
		if e.opts.Level == SC {
			ns.mem[loc] = val
		} else {
			th.buf = append(th.buf, bufEntry{loc: loc, val: val})
		}
	case prog.ICAS:
		loc, ok := evalLoc(in.Addr)
		if !ok {
			return nil
		}
		old := in.Old.Eval(th.regs, nil)
		repl := in.New.Eval(th.regs, nil)
		cur := ns.mem[loc]
		th.regs[in.Dst] = cur
		succ := cur == old
		if succ {
			ns.mem[loc] = repl
		}
		if in.Succ >= 0 {
			if succ {
				th.regs[in.Succ] = 1
			} else {
				th.regs[in.Succ] = 0
			}
		}
	case prog.IFAdd:
		loc, ok := evalLoc(in.Addr)
		if !ok {
			return nil
		}
		delta := in.Val.Eval(th.regs, nil)
		th.regs[in.Dst] = ns.mem[loc]
		ns.mem[loc] += delta
	case prog.IXchg:
		loc, ok := evalLoc(in.Addr)
		if !ok {
			return nil
		}
		val := in.Val.Eval(th.regs, nil)
		th.regs[in.Dst] = ns.mem[loc]
		ns.mem[loc] = val
	case prog.IFence:
		// A W→W barrier is only meaningful with a pending store before it;
		// pushed onto an empty buffer it would never be popped.
		if e.opts.Level == PSO && in.Fence == eg.FenceLW && !ns.bufferEmpty(t) {
			th.buf = append(th.buf, bufEntry{barrier: true})
		}
		// Full fences were gated on an empty buffer in enabled(); lw on
		// SC/TSO and ld everywhere are no-ops.
	default:
		panic("operational: non-visible instruction reached apply: " + in.String())
	}
	th.pc++
	th.steps++
	return ns
}

func (e *opExplorer) recordError(msg string) {
	e.res.Errors = append(e.res.Errors, msg)
	if e.opts.StopOnError {
		e.stop = true
	}
}

// visit explores all runs from s (which need not be normalized).
func (e *opExplorer) visit(s *state) {
	if e.cancelled() {
		return
	}
	if msg := e.normalize(s); msg != "" {
		e.recordError(msg)
		return
	}
	if e.seen != nil {
		k := s.key()
		if e.seen[k] {
			return
		}
		e.seen[k] = true
	}
	e.res.States++
	cs := e.enabled(s)
	if len(cs) == 0 {
		e.terminal(s)
		return
	}
	for _, c := range cs {
		if e.stop {
			return
		}
		if ns := e.apply(s, c); ns != nil {
			e.visit(ns)
		}
	}
}

// terminal records a maximal run.
func (e *opExplorer) terminal(s *state) {
	for t := range s.threads {
		if s.threads[t].blocked {
			e.res.Blocked++
			return
		}
		if !s.bufferEmpty(t) {
			panic("operational: terminal state with pending stores (commit scheduling broken)")
		}
	}
	e.res.Traces++
	fs := s.finalState()
	e.res.Finals[FinalKey(fs)] = fs
	if e.p.Exists != nil && e.p.Exists(fs) {
		e.res.ExistsCount++
	}
	if e.opts.MaxTraces > 0 && e.res.Traces >= e.opts.MaxTraces {
		e.res.Truncated = true
		e.stop = true
	}
}
